#include "viz/parallel_render.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "core/tile_refiner.h"
#include "obs/metrics.h"
#include "util/failpoint.h"
#include "util/timer.h"

namespace kdv {

namespace {

// Whole-frame observability, recorded once per frame after the tile-order
// merge — never inside the per-pixel loops.
struct FrameObs {
  obs::Counter* frames;
  obs::Counter* cache_hits;
  obs::Counter* cache_misses;
  obs::Histogram* frame_seconds;
  obs::Histogram* bound_evals_per_pixel;
  FrameObs() {
    auto& r = obs::MetricsRegistry::Global();
    frames = r.GetCounter("kdv_render_frames_total");
    cache_hits = r.GetCounter("kdv_frontier_cache_hits_total");
    cache_misses = r.GetCounter("kdv_frontier_cache_misses_total");
    frame_seconds = r.GetHistogram("kdv_render_frame_seconds");
    bound_evals_per_pixel = r.GetHistogram("kdv_render_bound_evals_per_pixel");
  }
  static FrameObs& Get() {
    static FrameObs& o = *new FrameObs();
    return o;
  }
};

// Injected whole-frame fault (same site as the serial renderers): record it
// and hand back the untouched (all-zero, finite) frame.
bool EntryFault(BatchStats* stats) {
  Status status = KDV_FAILPOINT_STATUS("viz.render");
  if (status.ok()) return false;
  if (stats != nullptr) {
    stats->completed = false;
    stats->status = status;
  }
  return true;
}

void MarkTileStopped(BatchStats* stats, StopReason reason) {
  stats->completed = false;
  if (reason == StopReason::kDeadline) stats->deadline_expired = true;
  if (reason == StopReason::kCancel) stats->cancelled = true;
}

// Shared state of one in-flight frame. Helper tasks hold it via shared_ptr:
// a helper that only gets scheduled after the frame finished claims no tile,
// dereferences none of the frame-lifetime pointers below, and merely drops
// its reference.
struct FrameJob {
  // Frame-lifetime (owned by the rendering call, valid while any tile is
  // unclaimed or in flight — i.e. until tiles_done == num_tiles).
  const KdeEvaluator* evaluator = nullptr;
  const PixelGrid* grid = nullptr;
  const QueryControl* control = nullptr;
  const char* failpoint_site = nullptr;

  uint32_t tile_rows = 1;
  uint32_t num_tiles = 0;

  // Tile-shared refinement state (refiner == nullptr means off). The refiner
  // lives on the rendering call's stack; like evaluator/grid/control it is
  // only dereferenced by workers holding a valid tile claim.
  const TileRefiner* refiner = nullptr;
  uint32_t tile_cols = 0;
  uint32_t chunks_per_band = 0;
  bool eps_mode = true;
  double param = 0.0;
  // Exactly one of these is set in shared mode: a cache hit serves every
  // chunk read-only; a miss builds into `building` (each chunk written by
  // the one worker that claimed its band).
  std::shared_ptr<const FrameFrontiers> cached;
  std::shared_ptr<FrameFrontiers> building;

  std::atomic<uint32_t> next_tile{0};
  // First stop/fault raises this; other workers abandon their tiles at the
  // next per-pixel poll instead of finishing a frame nobody will keep.
  std::atomic<bool> stop{false};
  std::vector<BatchStats> tile_stats;

  std::mutex mu;
  std::condition_variable done_cv;
  uint32_t tiles_done = 0;  // guarded by mu
};

// Per-pixel stop/fault preamble shared by every pixel loop. Returns false
// when the tile must be abandoned.
bool PixelPreamble(FrameJob& job, BatchStats& ts) {
  if (job.stop.load(std::memory_order_relaxed)) {
    ts.completed = false;
    return false;
  }
  StopReason stop = job.control->CheckStop();
  if (stop != StopReason::kNone) {
    MarkTileStopped(&ts, stop);
    job.stop.store(true, std::memory_order_relaxed);
    return false;
  }
  Status status = KDV_FAILPOINT_STATUS(job.failpoint_site);
  if (!status.ok()) {
    ts.completed = false;
    ts.status = status;
    job.stop.store(true, std::memory_order_relaxed);
    return false;
  }
  return true;
}

// Evaluates one band of rows. EvalPixel is
//   Value (const Point& q, RefinementStream& scratch, BatchStats* ts,
//          bool* interrupted)
// — the exact per-pixel body of the corresponding serial batch driver.
template <typename Value, typename EvalPixel>
void ProcessTile(FrameJob& job, uint32_t tile, Value* values,
                 RefinementStream& scratch, const EvalPixel& eval) {
  BatchStats& ts = job.tile_stats[tile];
  const PixelGrid& grid = *job.grid;
  const int height = grid.height();
  const int row_begin = static_cast<int>(tile * job.tile_rows);
  const int row_end =
      std::min<int>(row_begin + static_cast<int>(job.tile_rows), height);
  for (int py = row_begin; py < row_end; ++py) {
    for (int px = 0; px < grid.width(); ++px) {
      if (!PixelPreamble(job, ts)) return;
      bool interrupted = false;
      values[grid.PixelIndex(px, py)] =
          eval(grid.PixelCenter(px, py), scratch, &ts, &interrupted);
      if (interrupted) {
        MarkTileStopped(&ts, job.control->CheckStop());
        job.stop.store(true, std::memory_order_relaxed);
        return;
      }
    }
  }
}

// Shared-traversal band processing: the band is cut into column chunks; each
// chunk runs (or loads) one region pass, then either fills its pixels from a
// whole-chunk decision or refines them seeded from the chunk frontier.
// EvalSeeded is
//   Value (const Point& q, const TileFrontier& tf, RefinementStream& scratch,
//          BatchStats* ts, bool* interrupted)
// and DecidedVal maps a decided frontier to the fill value.
template <typename Value, typename EvalPixel, typename EvalSeeded,
          typename DecidedVal>
void ProcessTileShared(FrameJob& job, uint32_t tile, Value* values,
                       RefinementStream& scratch, const EvalPixel& eval,
                       const EvalSeeded& eval_seeded,
                       const DecidedVal& decided_val) {
  BatchStats& ts = job.tile_stats[tile];
  const PixelGrid& grid = *job.grid;
  const int width = grid.width();
  const int row_begin = static_cast<int>(tile * job.tile_rows);
  const int row_end = std::min<int>(
      row_begin + static_cast<int>(job.tile_rows), grid.height());
  for (uint32_t cx = 0; cx < job.chunks_per_band; ++cx) {
    const int col_begin = static_cast<int>(cx * job.tile_cols);
    const int col_end =
        std::min<int>(col_begin + static_cast<int>(job.tile_cols), width);
    if (!PixelPreamble(job, ts)) return;

    const uint32_t chunk = tile * job.chunks_per_band + cx;
    const TileFrontier* tf = nullptr;
    if (job.cached != nullptr) {
      tf = &(*job.cached)[chunk];
    } else {
      // Hull of the chunk's pixel centers (data y is flipped, so the last
      // row holds the lowest y).
      Rect query_rect(2);
      query_rect.Expand(grid.PixelCenter(col_begin, row_end - 1));
      query_rect.Expand(grid.PixelCenter(col_end - 1, row_begin));
      Timer pass_timer;
      TileFrontier built = job.eps_mode
                               ? job.refiner->BuildEps(query_rect, job.param)
                               : job.refiner->BuildTau(query_rect, job.param);
      ts.tile_seconds += pass_timer.ElapsedSeconds();
      ts.tile_nodes_visited += built.nodes_visited;
      ts.tile_accepted += built.accepted;
      ts.tile_pruned += built.pruned;
      (*job.building)[chunk] = std::move(built);
      tf = &(*job.building)[chunk];
    }

    if (tf->valid && tf->decided) {
      // Region bounds answered the whole chunk: certified fill, zero
      // per-pixel work.
      ++ts.tiles_decided;
      const Value fill = decided_val(*tf);
      for (int py = row_begin; py < row_end; ++py) {
        for (int px = col_begin; px < col_end; ++px) {
          values[grid.PixelIndex(px, py)] = fill;
        }
      }
      ts.queries += static_cast<uint64_t>(row_end - row_begin) *
                    static_cast<uint64_t>(col_end - col_begin);
      continue;
    }

    for (int py = row_begin; py < row_end; ++py) {
      for (int px = col_begin; px < col_end; ++px) {
        if (!PixelPreamble(job, ts)) return;
        bool interrupted = false;
        const Point q = grid.PixelCenter(px, py);
        // An invalid frontier (region pass hit a numeric fault) falls back
        // to root-seeded per-pixel refinement for the whole chunk.
        values[grid.PixelIndex(px, py)] =
            tf->valid ? eval_seeded(q, *tf, scratch, &ts, &interrupted)
                      : eval(q, scratch, &ts, &interrupted);
        if (interrupted) {
          MarkTileStopped(&ts, job.control->CheckStop());
          job.stop.store(true, std::memory_order_relaxed);
          return;
        }
      }
    }
  }
}

// Claims and processes tiles until the counter is exhausted. Runs in the
// caller thread and in every helper task; each drainer reuses one
// RefinementStream across all its tiles (zero-allocation refinement).
// ProcessFn is void (FrameJob&, uint32_t tile, Value*, RefinementStream&).
template <typename Value, typename ProcessFn>
void DrainTiles(const std::shared_ptr<FrameJob>& job, Value* values,
                const ProcessFn& process) {
  uint32_t tile = job->next_tile.fetch_add(1, std::memory_order_relaxed);
  if (tile >= job->num_tiles) return;  // late helper: frame may be gone
  RefinementStream scratch = job->evaluator->MakeScratch();
  do {
    process(*job, tile, values, scratch);
    bool all_done;
    {
      std::lock_guard<std::mutex> lock(job->mu);
      all_done = ++job->tiles_done == job->num_tiles;
    }
    if (all_done) job->done_cv.notify_all();
    tile = job->next_tile.fetch_add(1, std::memory_order_relaxed);
  } while (tile < job->num_tiles);
}

// Tile-index-order merge keeps every counter deterministic across thread
// counts and schedules.
void MergeTileStats(const std::vector<BatchStats>& tiles, BatchStats* stats) {
  if (stats == nullptr) return;
  for (const BatchStats& tile : tiles) {
    stats->queries += tile.queries;
    stats->iterations += tile.iterations;
    stats->points_scanned += tile.points_scanned;
    stats->nodes_visited += tile.nodes_visited;
    stats->numeric_faults += tile.numeric_faults;
    stats->tile_nodes_visited += tile.tile_nodes_visited;
    stats->tile_accepted += tile.tile_accepted;
    stats->tile_pruned += tile.tile_pruned;
    stats->tiles_decided += tile.tiles_decided;
    stats->tile_seconds += tile.tile_seconds;
    if (!tile.completed) stats->completed = false;
    if (tile.deadline_expired) stats->deadline_expired = true;
    if (tile.cancelled) stats->cancelled = true;
    if (stats->status.ok() && !tile.status.ok()) stats->status = tile.status;
  }
}

std::shared_ptr<FrameJob> MakeFrameJob(const KdeEvaluator& evaluator,
                                       const PixelGrid& grid,
                                       const RenderOptions& options,
                                       const QueryControl& control,
                                       const char* failpoint_site) {
  auto job = std::make_shared<FrameJob>();
  job->evaluator = &evaluator;
  job->grid = &grid;
  job->control = &control;
  job->failpoint_site = failpoint_site;
  job->tile_rows =
      static_cast<uint32_t>(std::clamp(options.tile_rows, 1, grid.height()));
  job->num_tiles =
      (static_cast<uint32_t>(grid.height()) + job->tile_rows - 1) /
      job->tile_rows;
  job->tile_stats.resize(job->num_tiles);
  return job;
}

template <typename Value, typename ProcessFn>
void RunFrameJob(const std::shared_ptr<FrameJob>& job,
                 const RenderOptions& options, Executor* pool,
                 BatchStats* stats, std::vector<Value>* values,
                 const ProcessFn& process) {
  Timer timer;
  const int threads = ResolveRenderThreads(options.num_threads);
  int helpers = 0;
  if (pool != nullptr && threads > 1 && job->num_tiles > 1) {
    const int want =
        std::min<int>(threads - 1, static_cast<int>(job->num_tiles) - 1);
    Value* data = values->data();
    for (int i = 0; i < want; ++i) {
      // Rejections (pool saturated or stopping) shed the band back onto the
      // caller loop below — the frame still completes, just less parallel.
      if (pool->TrySubmit(
                  [job, data, process] { DrainTiles(job, data, process); })
              .ok()) {
        ++helpers;
      }
    }
  }
  DrainTiles(job, values->data(), process);
  if (helpers > 0) {
    std::unique_lock<std::mutex> lock(job->mu);
    job->done_cv.wait(lock,
                      [&job] { return job->tiles_done == job->num_tiles; });
  }
  MergeTileStats(job->tile_stats, stats);
  if (stats != nullptr) {
    stats->seconds = timer.ElapsedSeconds();
    FrameObs& o = FrameObs::Get();
    o.frames->Increment();
    o.frame_seconds->Record(stats->seconds);
    if (stats->queries > 0) {
      o.bound_evals_per_pixel->Record(
          static_cast<double>(stats->nodes_visited +
                              stats->tile_nodes_visited) /
          static_cast<double>(stats->queries));
    }
  }
}

// Configures the shared-traversal state on the job (chunk geometry + cache
// lookup). Returns the cache key so the caller can publish after a clean
// frame.
FrontierKey ConfigureSharedJob(const std::shared_ptr<FrameJob>& job,
                               const PixelGrid& grid,
                               const RenderOptions& options,
                               const TileRefiner* refiner, bool eps_mode,
                               double param, BatchStats* stats) {
  job->refiner = refiner;
  job->eps_mode = eps_mode;
  job->param = param;
  const int want_cols =
      options.tile_cols > 0 ? options.tile_cols
                            : static_cast<int>(job->tile_rows);
  job->tile_cols =
      static_cast<uint32_t>(std::clamp(want_cols, 1, grid.width()));
  job->chunks_per_band =
      (static_cast<uint32_t>(grid.width()) + job->tile_cols - 1) /
      job->tile_cols;

  FrontierKey key;
  key.epoch = options.cache_epoch;
  key.width = grid.width();
  key.height = grid.height();
  key.lo0 = grid.domain().lo(0);
  key.lo1 = grid.domain().lo(1);
  key.hi0 = grid.domain().hi(0);
  key.hi1 = grid.domain().hi(1);
  key.tile_rows = job->tile_rows;
  key.tile_cols = job->tile_cols;
  key.mode = eps_mode ? 'e' : 't';
  key.param = param;

  const size_t num_chunks =
      static_cast<size_t>(job->num_tiles) * job->chunks_per_band;
  if (options.frontier_cache != nullptr) {
    auto hit = options.frontier_cache->Lookup(key);
    if (hit != nullptr && hit->size() == num_chunks) {
      job->cached = std::move(hit);
      if (stats != nullptr) ++stats->frontier_cache_hits;
      FrameObs::Get().cache_hits->Increment();
    } else {
      FrameObs::Get().cache_misses->Increment();
    }
  }
  if (job->cached == nullptr) {
    job->building = std::make_shared<FrameFrontiers>(num_chunks);
  }
  return key;
}

// Publishes the freshly built frontiers after a clean (unstopped) frame.
void PublishFrontiers(const std::shared_ptr<FrameJob>& job,
                      const RenderOptions& options, const FrontierKey& key) {
  if (options.frontier_cache == nullptr || job->building == nullptr) return;
  if (job->stop.load(std::memory_order_relaxed)) return;
  options.frontier_cache->Insert(key, std::move(job->building));
}

// Tile-shared rendering applies only when a bound function exists and the
// index dimensionality matches the 2-d pixel queries.
bool TileSharedApplies(const KdeEvaluator& evaluator,
                       const RenderOptions& options) {
  return options.tile_shared && evaluator.bounds() != nullptr &&
         evaluator.tree().dim() == 2;
}

}  // namespace

int ResolveRenderThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

DensityFrame RenderEpsFrameParallel(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    const RenderOptions& options,
                                    Executor* pool,
                                    const QueryControl& control,
                                    BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  auto job = MakeFrameJob(evaluator, grid, options, control, "runner.eps");
  auto eval = [&evaluator, eps, &control](const Point& q,
                                          RefinementStream& scratch,
                                          BatchStats* ts, bool* interrupted) {
    EvalResult r = evaluator.EvaluateEps(q, eps, control, &scratch);
    AccumulateQueryStats(ts, r);
    *interrupted = r.interrupted;
    return r.estimate;
  };
  if (!TileSharedApplies(evaluator, options)) {
    RunFrameJob(job, options, pool, stats, &frame.values,
                [eval](FrameJob& j, uint32_t tile, double* values,
                       RefinementStream& scratch) {
                  ProcessTile(j, tile, values, scratch, eval);
                });
    return frame;
  }

  TileRefiner refiner(&evaluator.tree(), evaluator.params(),
                      evaluator.bounds());
  FrontierKey key = ConfigureSharedJob(job, grid, options, &refiner,
                                       /*eps_mode=*/true, eps, stats);
  auto eval_seeded = [&evaluator, eps, &control](
                         const Point& q, const TileFrontier& tf,
                         RefinementStream& scratch, BatchStats* ts,
                         bool* interrupted) {
    EvalResult r = evaluator.EvaluateEpsSeeded(q, eps, tf, control, &scratch);
    AccumulateQueryStats(ts, r);
    *interrupted = r.interrupted;
    return r.estimate;
  };
  auto decided_val = [](const TileFrontier& tf) { return tf.decided_value; };
  RunFrameJob(job, options, pool, stats, &frame.values,
              [eval, eval_seeded, decided_val](FrameJob& j, uint32_t tile,
                                               double* values,
                                               RefinementStream& scratch) {
                ProcessTileShared(j, tile, values, scratch, eval, eval_seeded,
                                  decided_val);
              });
  PublishFrontiers(job, options, key);
  return frame;
}

BinaryFrame RenderTauFrameParallel(const KdeEvaluator& evaluator,
                                   const PixelGrid& grid, double tau,
                                   const RenderOptions& options,
                                   Executor* pool,
                                   const QueryControl& control,
                                   BatchStats* stats) {
  BinaryFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  auto job = MakeFrameJob(evaluator, grid, options, control, "runner.tau");
  auto eval = [&evaluator, tau, &control](const Point& q,
                                          RefinementStream& scratch,
                                          BatchStats* ts, bool* interrupted) {
    TauResult r = evaluator.EvaluateTau(q, tau, control, &scratch);
    AccumulateQueryStats(ts, r);
    *interrupted = r.interrupted;
    return static_cast<uint8_t>(r.above_threshold ? 1 : 0);
  };
  if (!TileSharedApplies(evaluator, options)) {
    RunFrameJob(job, options, pool, stats, &frame.values,
                [eval](FrameJob& j, uint32_t tile, uint8_t* values,
                       RefinementStream& scratch) {
                  ProcessTile(j, tile, values, scratch, eval);
                });
    return frame;
  }

  TileRefiner refiner(&evaluator.tree(), evaluator.params(),
                      evaluator.bounds());
  FrontierKey key = ConfigureSharedJob(job, grid, options, &refiner,
                                       /*eps_mode=*/false, tau, stats);
  auto eval_seeded = [&evaluator, tau, &control](
                         const Point& q, const TileFrontier& tf,
                         RefinementStream& scratch, BatchStats* ts,
                         bool* interrupted) {
    TauResult r = evaluator.EvaluateTauSeeded(q, tau, tf, control, &scratch);
    AccumulateQueryStats(ts, r);
    *interrupted = r.interrupted;
    return static_cast<uint8_t>(r.above_threshold ? 1 : 0);
  };
  auto decided_val = [](const TileFrontier& tf) {
    return static_cast<uint8_t>(tf.decided_above ? 1 : 0);
  };
  RunFrameJob(job, options, pool, stats, &frame.values,
              [eval, eval_seeded, decided_val](FrameJob& j, uint32_t tile,
                                               uint8_t* values,
                                               RefinementStream& scratch) {
                ProcessTileShared(j, tile, values, scratch, eval, eval_seeded,
                                  decided_val);
              });
  PublishFrontiers(job, options, key);
  return frame;
}

DensityFrame RenderExactFrameParallel(const KdeEvaluator& evaluator,
                                      const PixelGrid& grid,
                                      const RenderOptions& options,
                                      Executor* pool,
                                      const QueryControl& control,
                                      BatchStats* stats) {
  DensityFrame frame(grid.width(), grid.height());
  if (EntryFault(stats)) return frame;
  auto job = MakeFrameJob(evaluator, grid, options, control, "runner.exact");
  const uint64_t num_points = evaluator.tree().num_points();
  auto eval = [&evaluator, num_points](const Point& q,
                                       RefinementStream& /*scratch*/,
                                       BatchStats* ts, bool* interrupted) {
    // Exact scans are uninterruptible mid-query, matching RunExactBatch.
    *interrupted = false;
    ++ts->queries;
    ts->points_scanned += num_points;
    return evaluator.EvaluateExact(q);
  };
  RunFrameJob(job, options, pool, stats, &frame.values,
              [eval](FrameJob& j, uint32_t tile, double* values,
                     RefinementStream& scratch) {
                ProcessTile(j, tile, values, scratch, eval);
              });
  return frame;
}

}  // namespace kdv
