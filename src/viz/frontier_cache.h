// Cross-frame cache of tile-shared refinement frontiers.
//
// A frame rendered with RenderOptions::tile_shared pays one region-bound
// pass per tile chunk (core/tile_refiner.h). The pass depends only on the
// immutable index, the viewport geometry and the query parameters — not on
// which frame is being rendered — so progressive re-renders and repeated
// requests for the same viewport can reuse the frontiers verbatim. The serve
// layer keys the cache by epoch id: a dataset hot-swap changes the epoch and
// old entries can never leak into a new index generation (the renderer also
// never shares one cache across epochs; the key is defense in depth).
//
// Thread safety: all operations take an internal mutex; cached frames are
// immutable (shared_ptr<const ...>), so lookups can be consumed without
// further locking. Eviction is LRU with a small fixed capacity — the
// expected working set is "the viewport(s) currently being served".
#ifndef QUADKDV_VIZ_FRONTIER_CACHE_H_
#define QUADKDV_VIZ_FRONTIER_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/tile_frontier.h"

namespace kdv {

// Everything the tile pass output depends on (besides the index itself,
// which the epoch id stands in for). Doubles compare exactly: a viewport
// differing in the last ulp is simply a different viewport.
struct FrontierKey {
  uint64_t epoch = 0;
  int width = 0;
  int height = 0;
  double lo0 = 0.0, lo1 = 0.0, hi0 = 0.0, hi1 = 0.0;  // 2-d domain rect
  uint32_t tile_rows = 0;
  uint32_t tile_cols = 0;
  char mode = 'e';      // 'e' = εKDV, 't' = τKDV
  double param = 0.0;   // eps or tau
  bool operator==(const FrontierKey&) const = default;
};

// The per-chunk frontiers of one whole frame, chunk-index order.
using FrameFrontiers = std::vector<TileFrontier>;

class FrontierCache {
 public:
  // capacity 0 disables the cache: Lookup always misses and Insert is a
  // no-op (it used to index an empty slot vector — UB).
  explicit FrontierCache(size_t capacity = 8) : capacity_(capacity) {}

  FrontierCache(const FrontierCache&) = delete;
  FrontierCache& operator=(const FrontierCache&) = delete;

  // Returns the cached frame for `key`, or nullptr.
  std::shared_ptr<const FrameFrontiers> Lookup(const FrontierKey& key) {
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      if (slot.key == key) {
        slot.last_used = ++seq_;
        ++hits_;
        return slot.value;
      }
    }
    ++misses_;
    return nullptr;
  }

  // Publishes a fully built frame (only complete, fault-free frames should
  // be inserted). Replaces an existing entry with the same key.
  void Insert(const FrontierKey& key,
              std::shared_ptr<const FrameFrontiers> value) {
    // capacity 0: disabled. Without this guard the size check below reads
    // `0 >= 0`, takes the evict branch, and indexes slots_[0] of an empty
    // vector.
    if (value == nullptr || capacity_ == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      if (slot.key == key) {
        slot.value = std::move(value);
        slot.last_used = ++seq_;
        return;
      }
    }
    if (slots_.size() >= capacity_) {
      size_t evict = 0;
      for (size_t i = 1; i < slots_.size(); ++i) {
        if (slots_[i].last_used < slots_[evict].last_used) evict = i;
      }
      slots_[evict] = Slot{key, std::move(value), ++seq_};
      return;
    }
    slots_.push_back(Slot{key, std::move(value), ++seq_});
  }

  uint64_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  uint64_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

 private:
  struct Slot {
    FrontierKey key;
    std::shared_ptr<const FrameFrontiers> value;
    uint64_t last_used = 0;
  };

  mutable std::mutex mu_;
  std::vector<Slot> slots_;
  uint64_t seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  size_t capacity_;
};

}  // namespace kdv

#endif  // QUADKDV_VIZ_FRONTIER_CACHE_H_
