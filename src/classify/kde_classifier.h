// Kernel density classification with bound-based early termination.
//
// This extends the paper's machinery to the task its tKDC baseline was built
// for (and which the paper names as future work for QUAD): given k labeled
// point sets P_1..P_k, classify a query q by the highest class-conditional
// kernel density argmax_c F_{P_c}(q). Instead of computing every density
// exactly, one RefinementStream per class tightens certified intervals
// [lb_c, ub_c] and stops as soon as one class's lower bound dominates every
// other class's upper bound — the same pruning principle as τKDV, applied
// across classes. Tighter bounds (QUAD) certify the winner in fewer steps.
#ifndef QUADKDV_CLASSIFY_KDE_CLASSIFIER_H_
#define QUADKDV_CLASSIFY_KDE_CLASSIFIER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bounds/node_bounds.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"

namespace kdv {

class KdeClassifier {
 public:
  struct Options {
    Method method = Method::kQuad;  // bound family (kExact = no pruning)
    KernelType kernel = KernelType::kGaussian;
    size_t leaf_size = 32;
    // If >= 0, overrides the pooled Scott's-rule gamma.
    double gamma_override = -1.0;
    BoundsOptions bounds;
  };

  struct Result {
    int label = -1;              // argmax class
    bool certified = false;      // bounds separated without full refinement
    uint64_t iterations = 0;     // total refinement steps over all classes
    uint64_t points_scanned = 0;
    std::vector<double> lower;   // final per-class certified bounds
    std::vector<double> upper;
  };

  // One point set per class label (all non-empty, same dimensionality). The
  // bandwidth is derived from the pooled data so every class shares one
  // kernel; per-class weights are 1/|P_c| (class-conditional densities).
  KdeClassifier(std::vector<PointSet> classes, const Options& options);

  KdeClassifier(const KdeClassifier&) = delete;
  KdeClassifier& operator=(const KdeClassifier&) = delete;

  int num_classes() const { return static_cast<int>(trees_.size()); }
  const KernelParams& params(int label) const { return params_[label]; }

  // Classifies q. Deterministic: ties break toward the smaller label.
  Result Classify(const Point& q) const;

  // Exact (scan-based) classification, for validation.
  int ClassifyExact(const Point& q) const;

 private:
  Options options_;
  std::vector<std::unique_ptr<KdTree>> trees_;
  std::vector<KernelParams> params_;  // per class (shared gamma, weight 1/n_c)
  std::vector<std::unique_ptr<NodeBounds>> bounds_;  // per class, may be null
};

}  // namespace kdv

#endif  // QUADKDV_CLASSIFY_KDE_CLASSIFIER_H_
