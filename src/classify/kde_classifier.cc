#include "classify/kde_classifier.h"

#include <algorithm>
#include <utility>

#include "core/refinement_stream.h"
#include "util/check.h"

namespace kdv {

KdeClassifier::KdeClassifier(std::vector<PointSet> classes,
                             const Options& options)
    : options_(options) {
  KDV_CHECK_MSG(!classes.empty(), "KdeClassifier requires >= 1 class");

  // Pooled bandwidth: one gamma for all classes (as in kernel discriminant
  // analysis and tKDC's setup), class-conditional weights 1/|P_c|.
  PointSet pooled;
  for (const PointSet& c : classes) {
    KDV_CHECK_MSG(!c.empty(), "every class needs at least one point");
    pooled.insert(pooled.end(), c.begin(), c.end());
  }
  KernelParams shared = MakeScottParams(options_.kernel, pooled);
  if (options_.gamma_override >= 0.0) shared.gamma = options_.gamma_override;

  KdTree::Options tree_options;
  tree_options.leaf_size = options_.leaf_size;
  for (PointSet& c : classes) {
    KernelParams p = shared;
    p.weight = 1.0 / static_cast<double>(c.size());
    params_.push_back(p);
    bounds_.push_back(MakeNodeBounds(options_.method, p, options_.bounds));
    trees_.push_back(std::make_unique<KdTree>(std::move(c), tree_options));
  }
}

int KdeClassifier::ClassifyExact(const Point& q) const {
  int best = 0;
  double best_value = -1.0;
  for (int c = 0; c < num_classes(); ++c) {
    const KdTree& tree = *trees_[c];
    const PointSet& pts = tree.points();
    double sum = 0.0;
    for (const Point& p : pts) {
      sum += params_[c].EvalSquaredDistance(SquaredDistance(q, p));
    }
    double value = params_[c].weight * sum;
    if (value > best_value) {
      best_value = value;
      best = c;
    }
  }
  return best;
}

KdeClassifier::Result KdeClassifier::Classify(const Point& q) const {
  const int k = num_classes();
  std::vector<RefinementStream> streams;
  streams.reserve(k);
  for (int c = 0; c < k; ++c) {
    streams.emplace_back(trees_[c].get(), params_[c], bounds_[c].get(), q);
  }

  Result result;
  while (true) {
    // Champion: class with the highest certified lower bound.
    int champion = 0;
    for (int c = 1; c < k; ++c) {
      if (streams[c].lower() > streams[champion].lower()) champion = c;
    }
    // Strongest challenger: highest upper bound among the others.
    int challenger = -1;
    for (int c = 0; c < k; ++c) {
      if (c == champion) continue;
      if (challenger < 0 || streams[c].upper() > streams[challenger].upper()) {
        challenger = c;
      }
    }
    if (challenger < 0 ||
        streams[champion].lower() >= streams[challenger].upper()) {
      result.label = champion;
      result.certified = true;
      break;
    }

    // Refine the contender whose interval is loosest; ties and exhausted
    // streams fall through to the next loosest.
    int target = -1;
    double target_gap = -1.0;
    for (int c : {champion, challenger}) {
      if (!streams[c].exhausted() && streams[c].gap() > target_gap) {
        target = c;
        target_gap = streams[c].gap();
      }
    }
    if (target < 0) {
      // Both fully refined yet overlapping: exact tie (or FP-level overlap).
      // Resolve by exact values; smaller label wins ties.
      result.label = streams[challenger].lower() > streams[champion].lower()
                         ? challenger
                         : std::min(champion, challenger);
      result.certified = false;
      break;
    }
    streams[target].Step();
  }

  for (int c = 0; c < k; ++c) {
    result.iterations += streams[c].iterations();
    result.points_scanned += streams[c].points_scanned();
    result.lower.push_back(streams[c].lower());
    result.upper.push_back(streams[c].upper());
  }
  return result;
}

}  // namespace kdv
