// State-directory manifest: the single atomic commit point for checkpoints.
//
// A persisted KDV dataset lives in a state directory:
//
//   <state>/MANIFEST                 this file (CRC-framed, written atomically)
//   <state>/index-00000001.kdv       checksummed kd-tree (index/serialization.h)
//   <state>/wal/seg-00000001.kdvj    update journal segments (index/journal.h)
//
// The manifest names the current index file and the first journal segment
// that is NOT yet folded into it (`journal_floor`). A checkpoint writes the
// new index under a fresh generation-numbered name, then atomically rewrites
// the manifest to point at it with a raised floor. Because the manifest
// flip is the only commit, a crash anywhere leaves a consistent pair:
// either the old {index, floor} (the new index file is an orphan recovery
// deletes) or the new one. Index files are never modified in place.
//
// Format (little-endian): magic "KDVM", then a CRC-32-covered body:
//   uint32 version = 1, uint64 generation, uint64 journal_floor,
//   uint32 name_len, name bytes, uint32 body_crc.
#ifndef QUADKDV_INDEX_MANIFEST_H_
#define QUADKDV_INDEX_MANIFEST_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace kdv {

struct Manifest {
  uint64_t generation = 0;     // bumped by every bootstrap/checkpoint
  uint64_t journal_floor = 1;  // first journal segment to replay on load
  std::string index_file;      // file name within the state directory
};

// "index-%08llu.kdv" for a generation.
std::string IndexFileName(uint64_t generation);

// Atomically writes the manifest (util/atomic_file.h).
Status SaveManifest(const std::string& path, const Manifest& manifest);

// Loads and verifies a manifest. NotFound if absent; DataLoss for a bad
// magic, truncation, an implausible name length, or a checksum mismatch.
StatusOr<Manifest> LoadManifest(const std::string& path);

}  // namespace kdv

#endif  // QUADKDV_INDEX_MANIFEST_H_
