#include "index/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace kdv {

namespace {

constexpr char kSegmentMagic[4] = {'K', 'D', 'V', 'J'};
constexpr uint32_t kSegmentVersion = 1;
constexpr size_t kSegmentHeaderBytes =
    sizeof(kSegmentMagic) + sizeof(uint32_t) + sizeof(uint64_t);
constexpr size_t kRecordHeaderBytes = 2 * sizeof(uint32_t);
// payload fixed part: op + dim + reserved + count.
constexpr size_t kPayloadFixedBytes =
    sizeof(uint8_t) + sizeof(uint8_t) + sizeof(uint16_t) + sizeof(uint32_t);
// A batch beyond this is a corrupt length field, not data (2^26 bytes of
// 2-d doubles is ~4M points per batch).
constexpr uint32_t kMaxRecordPayload = 64u << 20;

std::string Errno(const char* what, const std::string& path) {
  return std::string(what) + " " + path + " failed: " + std::strerror(errno);
}

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ParsePod(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

Status WriteAllFd(int fd, const char* data, size_t len,
                  const std::string& path) {
  while (len > 0) {
    ssize_t n = ::write(fd, data, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return DataLossError(Errno("write to", path));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return OkStatus();
}

// Parses "seg-%08llu.kdvj"; returns 0 for anything else (0 is never a valid
// sequence).
uint64_t ParseSegmentSequence(const std::string& name) {
  unsigned long long seq = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "seg-%llu.kdvj%c", &seq, &tail) != 1) {
    return 0;
  }
  return seq;
}

}  // namespace

const char* JournalOpName(JournalOp op) {
  switch (op) {
    case JournalOp::kInsert:
      return "insert";
    case JournalOp::kRemove:
      return "remove";
  }
  return "unknown";
}

std::string Journal::SegmentFileName(uint64_t sequence) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%08llu.kdvj",
                static_cast<unsigned long long>(sequence));
  return buf;
}

Journal::Journal(std::string dir, uint64_t floor, Options options)
    : dir_(std::move(dir)), options_(options), floor_(floor) {}

Journal::~Journal() { (void)CloseWriteFd(); }

Status Journal::CloseWriteFd() {
  if (write_fd_ < 0) return OkStatus();
  int fd = write_fd_;
  write_fd_ = -1;
  if (::close(fd) != 0) {
    return DataLossError(Errno("close of segment in", dir_));
  }
  return OkStatus();
}

std::string Journal::SegmentPath(uint64_t sequence) const {
  return dir_ + "/" + SegmentFileName(sequence);
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& dir,
                                                 uint64_t floor,
                                                 Options options) {
  if (floor == 0) {
    return InvalidArgumentError("journal floor must be >= 1");
  }
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return NotFoundError("cannot create journal directory " + dir + ": " +
                         ec.message());
  }

  std::unique_ptr<Journal> journal(new Journal(dir, floor, options));

  // Find the highest existing segment at or above the floor.
  uint64_t tail = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const uint64_t seq = ParseSegmentSequence(entry.path().filename());
    if (seq >= floor) tail = std::max(tail, seq);
  }
  if (ec) {
    return NotFoundError("cannot scan journal directory " + dir + ": " +
                         ec.message());
  }

  if (tail == 0) {
    KDV_RETURN_IF_ERROR(journal->StartSegment(floor));
    return journal;
  }

  // Re-open the tail for appending. A tail shorter than its own header is a
  // crash artifact from segment creation; rewrite it as empty.
  const std::string path = journal->SegmentPath(tail);
  const uint64_t size = std::filesystem::file_size(path, ec);
  if (ec || size < kSegmentHeaderBytes) {
    KDV_RETURN_IF_ERROR(journal->StartSegment(tail));
    return journal;
  }
  int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) return NotFoundError(Errno("open of", path));
  journal->write_fd_ = fd;
  journal->tail_seq_ = tail;
  journal->tail_bytes_ = size;
  return journal;
}

Status Journal::StartSegment(uint64_t sequence) {
  KDV_RETURN_IF_ERROR(CloseWriteFd());
  const std::string path = SegmentPath(sequence);
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return NotFoundError(Errno("open of", path));

  std::string header(kSegmentMagic, sizeof(kSegmentMagic));
  AppendPod(&header, kSegmentVersion);
  AppendPod(&header, sequence);
  Status status = WriteAllFd(fd, header.data(), header.size(), path);
  if (status.ok() && ::fsync(fd) != 0) {
    status = DataLossError(Errno("fsync of", path));
  }
  if (!status.ok()) {
    ::close(fd);
    return status;
  }
  write_fd_ = fd;
  tail_seq_ = sequence;
  tail_bytes_ = header.size();
  // Make the new directory entry durable so a crash cannot lose an
  // acknowledged batch by losing the segment that holds it.
  return FsyncParentDir(path);
}

Status Journal::Append(JournalOp op, const PointSet& points) {
  if (points.empty()) {
    return InvalidArgumentError("journal batch must be non-empty");
  }
  const int dim = points[0].dim();
  if (dim < 1 || dim > kMaxDim) {
    return InvalidArgumentError("journal batch dim " + std::to_string(dim) +
                                " outside [1, " + std::to_string(kMaxDim) +
                                "]");
  }
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return InvalidArgumentError("journal batch has mixed dimensionality");
    }
  }
  if (write_fd_ < 0) {
    return FailedPreconditionError("journal has no open tail segment");
  }
  if (tail_bytes_ >= options_.max_segment_bytes) {
    KDV_RETURN_IF_ERROR(StartSegment(tail_seq_ + 1));
  }
  const std::string path = SegmentPath(tail_seq_);

  std::string payload;
  payload.reserve(kPayloadFixedBytes + points.size() * dim * sizeof(double));
  AppendPod(&payload, static_cast<uint8_t>(op));
  AppendPod(&payload, static_cast<uint8_t>(dim));
  AppendPod(&payload, static_cast<uint16_t>(0));
  AppendPod(&payload, static_cast<uint32_t>(points.size()));
  for (const Point& p : points) {
    for (int j = 0; j < dim; ++j) AppendPod(&payload, p[j]);
  }

  std::string record;
  record.reserve(kRecordHeaderBytes + payload.size());
  AppendPod(&record, static_cast<uint32_t>(payload.size()));
  AppendPod(&record, Crc32(payload.data(), payload.size()));
  record += payload;

  // Torn-tail injection: half the record lands, the rest never does — the
  // on-disk state a crash mid-append leaves. Replay() must repair it.
  Status torn = KDV_FAILPOINT_STATUS("journal.tail");
  if (!torn.ok()) {
    (void)WriteAllFd(write_fd_, record.data(), record.size() / 2, path);
    tail_bytes_ += record.size() / 2;
    return DataLossError("journal append to " + path +
                         " tore (injected journal.tail fault)");
  }
  Status short_write = KDV_FAILPOINT_STATUS("io.write");
  if (!short_write.ok()) {
    (void)WriteAllFd(write_fd_, record.data(), record.size() / 2, path);
    tail_bytes_ += record.size() / 2;
    return DataLossError("short journal append to " + path +
                         " (injected io.write fault)");
  }

  KDV_RETURN_IF_ERROR(
      WriteAllFd(write_fd_, record.data(), record.size(), path));
  tail_bytes_ += record.size();

  if (options_.fsync_each_append) {
    Status injected = KDV_FAILPOINT_STATUS("io.fsync");
    if (!injected.ok()) {
      return DataLossError("journal fsync of " + path +
                           " failed (injected io.fsync fault)");
    }
    if (::fsync(write_fd_) != 0) {
      return DataLossError(Errno("fsync of", path));
    }
  }
  return OkStatus();
}

Status Journal::Replay(const ReplayFn& fn, JournalReplayStats* stats) {
  JournalReplayStats local;
  JournalReplayStats* out = stats != nullptr ? stats : &local;
  *out = JournalReplayStats();

  for (uint64_t seq = floor_; seq <= tail_seq_; ++seq) {
    const std::string path = SegmentPath(seq);
    const bool is_tail = seq == tail_seq_;

    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      if (is_tail) continue;  // never created; nothing was acknowledged
      return DataLossError("journal segment " + path + " is missing");
    }
    std::string raw((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
    in.close();
    ++out->segments_scanned;

    if (raw.size() < kSegmentHeaderBytes ||
        std::memcmp(raw.data(), kSegmentMagic, sizeof(kSegmentMagic)) != 0 ||
        ParsePod<uint32_t>(raw.data() + 4) != kSegmentVersion ||
        ParsePod<uint64_t>(raw.data() + 8) != seq) {
      if (is_tail && raw.size() < kSegmentHeaderBytes) {
        // Crash during segment creation: treat as empty and rebuild it.
        out->tail_truncated = true;
        out->torn_bytes_truncated += raw.size();
        KDV_RETURN_IF_ERROR(StartSegment(seq));
        continue;
      }
      return DataLossError("journal segment " + path +
                           " has a corrupt header");
    }

    size_t pos = kSegmentHeaderBytes;
    while (pos < raw.size()) {
      // Validate the frame before touching the payload; any mismatch at the
      // tail is a crash artifact, anywhere else it is corruption.
      std::string reason;
      uint32_t len = 0;
      if (raw.size() - pos < kRecordHeaderBytes) {
        reason = "torn record header";
      } else {
        len = ParsePod<uint32_t>(raw.data() + pos);
        if (len > kMaxRecordPayload || len < kPayloadFixedBytes) {
          reason = "implausible record length " + std::to_string(len);
        } else if (raw.size() - pos - kRecordHeaderBytes < len) {
          reason = "torn record payload";
        } else {
          const char* payload = raw.data() + pos + kRecordHeaderBytes;
          const uint32_t stored = ParsePod<uint32_t>(raw.data() + pos + 4);
          if (Crc32(payload, len) != stored) {
            reason = "record checksum mismatch";
          }
        }
      }
      if (reason.empty()) {
        const char* payload = raw.data() + pos + kRecordHeaderBytes;
        const uint8_t op = ParsePod<uint8_t>(payload);
        const uint8_t dim = ParsePod<uint8_t>(payload + 1);
        const uint32_t count = ParsePod<uint32_t>(payload + 4);
        if ((op != static_cast<uint8_t>(JournalOp::kInsert) &&
             op != static_cast<uint8_t>(JournalOp::kRemove)) ||
            dim < 1 || dim > kMaxDim || count == 0 ||
            len != kPayloadFixedBytes +
                       static_cast<uint64_t>(count) * dim * sizeof(double)) {
          reason = "record payload fails validation";
        } else {
          PointSet batch;
          batch.reserve(count);
          const char* cursor = payload + kPayloadFixedBytes;
          for (uint32_t i = 0; i < count; ++i) {
            Point p(dim);
            for (uint8_t j = 0; j < dim; ++j) {
              p[j] = ParsePod<double>(cursor);
              cursor += sizeof(double);
            }
            batch.push_back(p);
          }
          KDV_RETURN_IF_ERROR(fn(static_cast<JournalOp>(op), batch));
          ++out->records_applied;
          out->points_applied += count;
          pos += kRecordHeaderBytes + len;
          continue;
        }
      }
      // Damaged frame. Tail-of-the-last-segment damage is repaired by
      // truncating back to the last good record boundary.
      if (!is_tail) {
        return DataLossError("journal segment " + path + " is corrupt (" +
                             reason + ") before the tail — not a crash "
                             "artifact");
      }
      out->tail_truncated = true;
      out->torn_bytes_truncated += raw.size() - pos;
      KDV_RETURN_IF_ERROR(CloseWriteFd());
      if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
        return DataLossError(Errno("truncate of", path));
      }
      int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
      if (fd < 0) return NotFoundError(Errno("open of", path));
      if (::fsync(fd) != 0) {
        Status status = DataLossError(Errno("fsync of", path));
        ::close(fd);
        return status;
      }
      write_fd_ = fd;
      tail_bytes_ = pos;
      break;
    }
  }
  return OkStatus();
}

StatusOr<uint64_t> Journal::Rotate() {
  KDV_RETURN_IF_ERROR(StartSegment(tail_seq_ + 1));
  return tail_seq_;
}

void Journal::DropSegmentsBelow(uint64_t floor) {
  for (uint64_t seq = floor_; seq < floor; ++seq) {
    std::error_code ec;
    std::filesystem::remove(SegmentPath(seq), ec);
  }
  floor_ = std::max(floor_, floor);
}

}  // namespace kdv
