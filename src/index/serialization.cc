#include "index/serialization.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <vector>

namespace kdv {

namespace {

constexpr char kMagic[4] = {'K', 'D', 'V', 'T'};
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ofstream& out, const T& value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

}  // namespace

bool SaveKdTree(const KdTree& tree, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out.is_open()) return false;

  out.write(kMagic, sizeof(kMagic));
  WritePod(out, kVersion);
  WritePod(out, static_cast<uint32_t>(tree.dim()));
  WritePod(out, static_cast<uint64_t>(tree.num_points()));
  WritePod(out, static_cast<uint64_t>(tree.num_nodes()));

  for (const Point& p : tree.points()) {
    for (int j = 0; j < tree.dim(); ++j) WritePod(out, p[j]);
  }
  for (uint32_t idx : tree.original_indices()) WritePod(out, idx);
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& node = tree.node(static_cast<int32_t>(i));
    WritePod(out, node.begin);
    WritePod(out, node.end);
    WritePod(out, node.left);
    WritePod(out, node.right);
  }
  return out.good();
}

std::unique_ptr<KdTree> LoadKdTree(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return nullptr;

  char magic[4];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return nullptr;
  }
  uint32_t version = 0, dim = 0;
  uint64_t num_points = 0, num_nodes = 0;
  if (!ReadPod(in, &version) || version != kVersion) return nullptr;
  if (!ReadPod(in, &dim) || dim == 0 || dim > static_cast<uint32_t>(kMaxDim)) {
    return nullptr;
  }
  if (!ReadPod(in, &num_points) || num_points == 0) return nullptr;
  if (!ReadPod(in, &num_nodes) || num_nodes == 0) return nullptr;
  // A kd-tree over n points has < 2n nodes; reject absurd headers before
  // allocating.
  if (num_nodes > 2 * num_points) return nullptr;

  PointSet points;
  points.reserve(num_points);
  for (uint64_t i = 0; i < num_points; ++i) {
    Point p(static_cast<int>(dim));
    for (uint32_t j = 0; j < dim; ++j) {
      if (!ReadPod(in, &p[static_cast<int>(j)])) return nullptr;
    }
    points.push_back(p);
  }
  std::vector<uint32_t> original_indices(num_points);
  for (uint64_t i = 0; i < num_points; ++i) {
    if (!ReadPod(in, &original_indices[i])) return nullptr;
  }
  std::vector<KdTree::Node> nodes(num_nodes);
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (!ReadPod(in, &nodes[i].begin) || !ReadPod(in, &nodes[i].end) ||
        !ReadPod(in, &nodes[i].left) || !ReadPod(in, &nodes[i].right)) {
      return nullptr;
    }
  }
  return KdTree::FromSerialized(std::move(points),
                                std::move(original_indices),
                                std::move(nodes));
}

}  // namespace kdv
