#include "index/serialization.h"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace kdv {

namespace {

constexpr char kMagic[4] = {'K', 'D', 'V', 'T'};

// Hard ceiling on the header's num_points before any allocation happens; a
// corrupt header asking for more than this is rejected as implausible
// regardless of file size (2^40 points of 2-d doubles is 16 TiB).
constexpr uint64_t kMaxPlausiblePoints = uint64_t{1} << 40;

constexpr size_t kPointBytes = sizeof(double);
constexpr size_t kIndexBytes = sizeof(uint32_t);
// begin, end (uint32) + left, right (int32) per node.
constexpr size_t kNodeBytes = 2 * sizeof(uint32_t) + 2 * sizeof(int32_t);

std::string Hex(uint32_t v) {
  std::ostringstream oss;
  oss << "0x" << std::hex << v;
  return oss.str();
}

// Appends a POD value to a byte buffer (v2 sections are staged in memory so
// a section CRC covers exactly the bytes that hit the disk).
template <typename T>
void AppendPod(std::vector<char>* buf, const T& value) {
  const char* raw = reinterpret_cast<const char*>(&value);
  buf->insert(buf->end(), raw, raw + sizeof(T));
}

template <typename T>
bool ReadPod(std::ifstream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return in.good();
}

template <typename T>
T ParsePod(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

void AppendPointsSection(const KdTree& tree, std::vector<char>* buf) {
  for (const Point& p : tree.points()) {
    for (int j = 0; j < tree.dim(); ++j) AppendPod(buf, p[j]);
  }
}

void AppendIndicesSection(const KdTree& tree, std::vector<char>* buf) {
  for (uint32_t idx : tree.original_indices()) AppendPod(buf, idx);
}

void AppendNodesSection(const KdTree& tree, std::vector<char>* buf) {
  for (size_t i = 0; i < tree.num_nodes(); ++i) {
    const KdTree::Node& node = tree.node(static_cast<int32_t>(i));
    AppendPod(buf, node.begin);
    AppendPod(buf, node.end);
    AppendPod(buf, node.left);
    AppendPod(buf, node.right);
  }
}

void SaveV1(const KdTree& tree, std::vector<char>* out) {
  AppendPod(out, static_cast<uint32_t>(tree.dim()));
  AppendPod(out, static_cast<uint64_t>(tree.num_points()));
  AppendPod(out, static_cast<uint64_t>(tree.num_nodes()));
  AppendPointsSection(tree, out);
  AppendIndicesSection(tree, out);
  AppendNodesSection(tree, out);
}

void SaveV2(const KdTree& tree, std::vector<char>* out) {
  std::vector<char> points, indices, nodes;
  AppendPointsSection(tree, &points);
  AppendIndicesSection(tree, &indices);
  AppendNodesSection(tree, &nodes);
  const uint64_t payload_bytes =
      points.size() + indices.size() + nodes.size() +
      3 * sizeof(uint32_t);  // three trailing section CRCs

  std::vector<char> header;
  AppendPod(&header, static_cast<uint32_t>(tree.dim()));
  AppendPod(&header, static_cast<uint64_t>(tree.num_points()));
  AppendPod(&header, static_cast<uint64_t>(tree.num_nodes()));
  AppendPod(&header, payload_bytes);
  const uint32_t header_crc = Crc32(header.data(), header.size());

  out->insert(out->end(), header.begin(), header.end());
  AppendPod(out, header_crc);
  for (const std::vector<char>* section : {&points, &indices, &nodes}) {
    out->insert(out->end(), section->begin(), section->end());
    AppendPod(out, Crc32(section->data(), section->size()));
  }
}

// Reads `bytes` bytes of section `name`, verifying the stored trailing CRC
// when `checked` is set. The size was validated against the real file size
// up front, so the allocation is bounded by what is actually on disk.
StatusOr<std::vector<char>> ReadSection(std::ifstream& in, const char* name,
                                        uint64_t bytes, bool checked) {
  std::vector<char> buf(bytes);
  in.read(buf.data(), static_cast<std::streamsize>(bytes));
  if (in.gcount() != static_cast<std::streamsize>(bytes)) {
    return DataLossError(std::string("unexpected end of file inside ") + name +
                         " section");
  }
  if (checked) {
    uint32_t stored = 0;
    if (!ReadPod(in, &stored)) {
      return DataLossError(std::string("unexpected end of file reading ") +
                           name + " section checksum");
    }
    const uint32_t computed = Crc32(buf.data(), buf.size());
    if (stored != computed) {
      return DataLossError(std::string(name) +
                           " section checksum mismatch (stored " +
                           Hex(stored) + ", computed " + Hex(computed) + ")");
    }
  }
  return buf;
}

struct Header {
  uint32_t version = 0;
  uint32_t dim = 0;
  uint64_t num_points = 0;
  uint64_t num_nodes = 0;
};

// Validates header bounds before any payload allocation and against the
// actual on-disk size, so a corrupt header can neither trigger a huge
// allocation nor mask a truncated payload.
Status CheckHeaderBounds(const Header& h, uint64_t actual_payload,
                         uint64_t declared_payload) {
  if (h.dim == 0 || h.dim > static_cast<uint32_t>(kMaxDim)) {
    return DataLossError("header dim " + std::to_string(h.dim) +
                         " outside [1, " + std::to_string(kMaxDim) + "]");
  }
  if (h.num_points == 0) return DataLossError("header declares zero points");
  if (h.num_points > kMaxPlausiblePoints) {
    return DataLossError("header declares an implausible point count " +
                         std::to_string(h.num_points));
  }
  if (h.num_nodes == 0) return DataLossError("header declares zero nodes");
  // A kd-tree over n points has < 2n nodes.
  if (h.num_nodes > 2 * h.num_points) {
    return DataLossError("header declares " + std::to_string(h.num_nodes) +
                         " nodes for " + std::to_string(h.num_points) +
                         " points (limit is 2x)");
  }
  const uint64_t expected =
      h.num_points * h.dim * kPointBytes + h.num_points * kIndexBytes +
      h.num_nodes * kNodeBytes +
      (h.version >= 2 ? 3 * sizeof(uint32_t) : uint64_t{0});
  if (declared_payload != expected) {
    return DataLossError("header payload length " +
                         std::to_string(declared_payload) +
                         " does not match declared counts (expected " +
                         std::to_string(expected) + ")");
  }
  if (actual_payload < expected) {
    return DataLossError("file truncated: payload has " +
                         std::to_string(actual_payload) + " bytes, header " +
                         "declares " + std::to_string(expected));
  }
  if (actual_payload > expected) {
    return DataLossError("file has " +
                         std::to_string(actual_payload - expected) +
                         " trailing bytes beyond the declared payload");
  }
  return OkStatus();
}

StatusOr<std::unique_ptr<KdTree>> ParseSections(
    const Header& h, std::vector<char> points_raw,
    std::vector<char> indices_raw, std::vector<char> nodes_raw) {
  PointSet points;
  points.reserve(h.num_points);
  const char* cursor = points_raw.data();
  for (uint64_t i = 0; i < h.num_points; ++i) {
    Point p(static_cast<int>(h.dim));
    for (uint32_t j = 0; j < h.dim; ++j) {
      p[static_cast<int>(j)] = ParsePod<double>(cursor);
      cursor += sizeof(double);
    }
    points.push_back(p);
  }
  std::vector<uint32_t> original_indices(h.num_points);
  cursor = indices_raw.data();
  for (uint64_t i = 0; i < h.num_points; ++i) {
    original_indices[i] = ParsePod<uint32_t>(cursor);
    cursor += sizeof(uint32_t);
  }
  std::vector<KdTree::Node> nodes(h.num_nodes);
  cursor = nodes_raw.data();
  for (uint64_t i = 0; i < h.num_nodes; ++i) {
    nodes[i].begin = ParsePod<uint32_t>(cursor);
    nodes[i].end = ParsePod<uint32_t>(cursor + 4);
    nodes[i].left = ParsePod<int32_t>(cursor + 8);
    nodes[i].right = ParsePod<int32_t>(cursor + 12);
    cursor += kNodeBytes;
  }
  return KdTree::FromSerialized(std::move(points),
                                std::move(original_indices),
                                std::move(nodes));
}

}  // namespace

Status SaveKdTree(const KdTree& tree, const std::string& path,
                  uint32_t version) {
  if (version != 1 && version != 2) {
    return InvalidArgumentError("unsupported kd-tree format version " +
                                std::to_string(version));
  }
  // Stage the complete image in memory, then publish it atomically: a crash
  // (or injected I/O fault) mid-save must never leave a half-written index
  // where a valid one used to be.
  std::vector<char> image;
  image.insert(image.end(), kMagic, kMagic + sizeof(kMagic));
  AppendPod(&image, version);
  if (version == 1) {
    SaveV1(tree, &image);
  } else {
    SaveV2(tree, &image);
  }
  return AtomicWriteFile(path, image.data(), image.size());
}

StatusOr<std::unique_ptr<KdTree>> LoadKdTree(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return NotFoundError("cannot open index file " + path);
  }
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);

  char magic[4];
  in.read(magic, sizeof(magic));
  if (in.gcount() != sizeof(magic) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return DataLossError(path + " is not a KDV index file (bad magic)");
  }
  Header h;
  if (!ReadPod(in, &h.version)) {
    return DataLossError("unexpected end of file reading format version");
  }
  if (h.version != 1 && h.version != 2) {
    return UnimplementedError("kd-tree format version " +
                              std::to_string(h.version) +
                              " is newer than this library (max " +
                              std::to_string(kKdTreeFormatVersion) + ")");
  }

  uint64_t declared_payload = 0;
  uint64_t header_end = 0;
  if (h.version == 2) {
    // dim + num_points + num_nodes + payload_bytes, covered by header_crc.
    char fields[sizeof(uint32_t) + 3 * sizeof(uint64_t)];
    in.read(fields, sizeof(fields));
    if (in.gcount() != static_cast<std::streamsize>(sizeof(fields))) {
      return DataLossError("unexpected end of file inside header");
    }
    uint32_t stored_crc = 0;
    if (!ReadPod(in, &stored_crc)) {
      return DataLossError("unexpected end of file reading header checksum");
    }
    const uint32_t computed_crc = Crc32(fields, sizeof(fields));
    if (stored_crc != computed_crc) {
      return DataLossError("header checksum mismatch (stored " +
                           Hex(stored_crc) + ", computed " +
                           Hex(computed_crc) + ")");
    }
    h.dim = ParsePod<uint32_t>(fields);
    h.num_points = ParsePod<uint64_t>(fields + 4);
    h.num_nodes = ParsePod<uint64_t>(fields + 12);
    declared_payload = ParsePod<uint64_t>(fields + 20);
    header_end = sizeof(kMagic) + sizeof(uint32_t) + sizeof(fields) +
                 sizeof(uint32_t);
  } else {
    if (!ReadPod(in, &h.dim) || !ReadPod(in, &h.num_points) ||
        !ReadPod(in, &h.num_nodes)) {
      return DataLossError("unexpected end of file inside header");
    }
    header_end = sizeof(kMagic) + 2 * sizeof(uint32_t) + 2 * sizeof(uint64_t);
    // v1 has no payload-length field; derive it from the declared counts so
    // the same bounds check applies.
    if (h.dim >= 1 && h.dim <= static_cast<uint32_t>(kMaxDim) &&
        h.num_points >= 1 && h.num_points <= kMaxPlausiblePoints &&
        h.num_nodes <= 2 * h.num_points) {
      declared_payload = h.num_points * h.dim * kPointBytes +
                         h.num_points * kIndexBytes + h.num_nodes * kNodeBytes;
    }
  }
  KDV_RETURN_IF_ERROR(
      CheckHeaderBounds(h, file_size - header_end, declared_payload));

  const bool checked = h.version >= 2;
  KDV_ASSIGN_OR_RETURN(
      std::vector<char> points_raw,
      ReadSection(in, "points", h.num_points * h.dim * kPointBytes, checked));
  KDV_ASSIGN_OR_RETURN(
      std::vector<char> indices_raw,
      ReadSection(in, "indices", h.num_points * kIndexBytes, checked));
  KDV_ASSIGN_OR_RETURN(
      std::vector<char> nodes_raw,
      ReadSection(in, "nodes", h.num_nodes * kNodeBytes, checked));
  return ParseSections(h, std::move(points_raw), std::move(indices_raw),
                       std::move(nodes_raw));
}

}  // namespace kdv
