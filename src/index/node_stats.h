// Per-node aggregate statistics enabling O(d)/O(d^2) bound evaluation.
//
// Lemma 1 (KARL) needs  S1(q) = sum_i dist(q, p_i)^2  in O(d):
//   S1(q) = n*||q||^2 - 2 q.a_P + b_P
// with a_P = sum p_i, b_P = sum ||p_i||^2.
//
// Lemma 3 (QUAD) additionally needs  S2(q) = sum_i dist(q, p_i)^4  in O(d^2):
//   S2(q) = n*||q||^4 - 4*||q||^2 (q.a_P) - 4 q.v_P + 2*||q||^2 b_P + h_P
//           + 4 q^T C q
// with v_P = sum ||p_i||^2 p_i, h_P = sum ||p_i||^4, C = sum p_i p_i^T.
//
// All aggregates are accumulated once at index-build time.
#ifndef QUADKDV_INDEX_NODE_STATS_H_
#define QUADKDV_INDEX_NODE_STATS_H_

#include <cstddef>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"

namespace kdv {

// Aggregates of a set of points. Movable/copyable value type.
class NodeStats {
 public:
  NodeStats() = default;

  // Accumulates the aggregates of points[begin, end). dim taken from the
  // first point; the range must be non-empty.
  static NodeStats Compute(const Point* points, size_t count);

  size_t count() const { return count_; }
  int dim() const { return dim_; }
  const Rect& mbr() const { return mbr_; }
  const Point& sum() const { return sum_; }                 // a_P
  double sum_sq_norm() const { return sum_sq_norm_; }       // b_P
  const Point& sum_sq_norm_p() const { return sum_sq_norm_p_; }  // v_P
  double sum_quartic_norm() const { return sum_quartic_norm_; }  // h_P

  // C[i*dim + j] = sum_i p[i]*p[j].
  const std::vector<double>& outer_product_sum() const { return outer_; }

  // S1(q) = sum dist(q, p_i)^2 in O(d).
  double SumSquaredDistances(const Point& q) const;

  // S2(q) = sum dist(q, p_i)^4 in O(d^2).
  double SumQuarticDistances(const Point& q) const;

  // Exact range of S1(q) over all q in `query_rect`, in O(d).
  //
  // S1(q) = sum_d (n*q_d^2 - 2*q_d*a_P[d]) + b_P is separable: per dimension
  // a convex parabola in q_d with vertex at a_P[d]/n, so the minimum over
  // [lo_d, hi_d] is attained at the clamped vertex and the maximum at one of
  // the two endpoints. Used by the region bound profiles (tile refinement).
  void SumSquaredDistancesRange(const Rect& query_rect, double* s1_min,
                                double* s1_max) const;

 private:
  size_t count_ = 0;
  int dim_ = 0;
  Rect mbr_;
  Point sum_;
  double sum_sq_norm_ = 0.0;
  Point sum_sq_norm_p_;
  double sum_quartic_norm_ = 0.0;
  std::vector<double> outer_;
};

}  // namespace kdv

#endif  // QUADKDV_INDEX_NODE_STATS_H_
