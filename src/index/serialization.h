// Binary serialization of kd-trees.
//
// Index construction is the offline stage of the paper's framework (§3.2);
// persisting the built tree (structure + per-node aggregates) lets a
// deployment build once and memory-map/load per session instead of paying
// the O(n log n · d^2) build on every start.
//
// Format (little-endian, version 1):
//   magic "KDVT", uint32 version, uint32 dim, uint64 num_points,
//   uint64 num_nodes,
//   points: num_points * dim doubles (tree order),
//   original_indices: num_points uint32,
//   nodes: for each node — begin, end (uint32), left, right (int32)
// Node aggregates are recomputed on load (cheaper than storing the O(d^2)
// matrices and immune to format drift in NodeStats).
#ifndef QUADKDV_INDEX_SERIALIZATION_H_
#define QUADKDV_INDEX_SERIALIZATION_H_

#include <memory>
#include <string>

#include "index/kdtree.h"

namespace kdv {

// Writes the tree to `path`. Returns false on I/O failure.
bool SaveKdTree(const KdTree& tree, const std::string& path);

// Loads a tree written by SaveKdTree. Returns nullptr on I/O failure,
// bad magic/version, or a structurally inconsistent file.
std::unique_ptr<KdTree> LoadKdTree(const std::string& path);

}  // namespace kdv

#endif  // QUADKDV_INDEX_SERIALIZATION_H_
