// Binary serialization of kd-trees.
//
// Index construction is the offline stage of the paper's framework (§3.2);
// persisting the built tree (structure + per-node aggregates) lets a
// deployment build once and memory-map/load per session instead of paying
// the O(n log n · d^2) build on every start. Because a persisted index is
// served to many sessions, loading treats the file as untrusted input:
// checksums catch bit rot and truncation, header bounds are validated before
// any allocation, and every structural invariant is re-verified.
//
// Format version 2 (little-endian, current default):
//   magic "KDVT", uint32 version = 2,
//   uint32 dim, uint64 num_points, uint64 num_nodes,
//   uint64 payload_bytes  (total bytes after the header),
//   uint32 header_crc     (CRC-32 of the fields between magic and this crc),
//   points:  num_points * dim doubles (tree order),  uint32 section crc
//   indices: num_points uint32,                      uint32 section crc
//   nodes:   per node begin,end (uint32), left,right (int32),
//                                                    uint32 section crc
// Version 1 (magic, version=1, dim, num_points, num_nodes, then the same
// three sections without checksums) is still readable; SaveKdTree can write
// it for compatibility. Node aggregates are recomputed on load (cheaper than
// storing the O(d^2) matrices and immune to format drift in NodeStats).
#ifndef QUADKDV_INDEX_SERIALIZATION_H_
#define QUADKDV_INDEX_SERIALIZATION_H_

#include <cstdint>
#include <memory>
#include <string>

#include "index/kdtree.h"
#include "util/status.h"

namespace kdv {

// Current on-disk format version written by default.
inline constexpr uint32_t kKdTreeFormatVersion = 2;

// Writes the tree to `path` in the given format version (1 or 2). Returns a
// non-OK Status on I/O failure or an unsupported version.
Status SaveKdTree(const KdTree& tree, const std::string& path,
                  uint32_t version = kKdTreeFormatVersion);

// Loads a tree written by SaveKdTree (either version). Returns:
//   * NotFound       — file cannot be opened,
//   * DataLoss       — bad magic, corrupt/truncated sections, checksum or
//                      structural-invariant mismatch,
//   * Unimplemented  — format version newer than this library.
// The error message names the failing section or invariant.
StatusOr<std::unique_ptr<KdTree>> LoadKdTree(const std::string& path);

}  // namespace kdv

#endif  // QUADKDV_INDEX_SERIALIZATION_H_
