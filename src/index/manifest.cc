#include "index/manifest.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "util/atomic_file.h"
#include "util/crc32.h"

namespace kdv {

namespace {

constexpr char kManifestMagic[4] = {'K', 'D', 'V', 'M'};
constexpr uint32_t kManifestVersion = 1;
// An index file name is "index-%08llu.kdv" or a quarantine-era variant;
// anything longer than this is a corrupt length field, not a name.
constexpr uint32_t kMaxNameLen = 4096;

template <typename T>
void AppendPod(std::string* buf, const T& value) {
  buf->append(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T ParsePod(const char* data) {
  T value;
  std::memcpy(&value, data, sizeof(T));
  return value;
}

}  // namespace

std::string IndexFileName(uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "index-%08llu.kdv",
                static_cast<unsigned long long>(generation));
  return buf;
}

Status SaveManifest(const std::string& path, const Manifest& manifest) {
  std::string body;
  AppendPod(&body, kManifestVersion);
  AppendPod(&body, manifest.generation);
  AppendPod(&body, manifest.journal_floor);
  AppendPod(&body, static_cast<uint32_t>(manifest.index_file.size()));
  body += manifest.index_file;
  const uint32_t crc = Crc32(body.data(), body.size());

  std::string file(kManifestMagic, sizeof(kManifestMagic));
  file += body;
  AppendPod(&file, crc);
  return AtomicWriteFile(path, file);
}

StatusOr<Manifest> LoadManifest(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return NotFoundError("cannot open manifest " + path);
  std::string raw((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());

  constexpr size_t kFixed = sizeof(kManifestMagic) + sizeof(uint32_t) +
                            2 * sizeof(uint64_t) + 2 * sizeof(uint32_t);
  if (raw.size() < kFixed) {
    return DataLossError("manifest " + path + " truncated (" +
                         std::to_string(raw.size()) + " bytes)");
  }
  if (std::memcmp(raw.data(), kManifestMagic, sizeof(kManifestMagic)) != 0) {
    return DataLossError("manifest " + path + " has a bad magic");
  }
  const char* body = raw.data() + sizeof(kManifestMagic);
  const size_t body_len = raw.size() - sizeof(kManifestMagic) -
                          sizeof(uint32_t);  // trailing crc
  const uint32_t version = ParsePod<uint32_t>(body);
  if (version != kManifestVersion) {
    return UnimplementedError("manifest version " + std::to_string(version) +
                              " is newer than this library");
  }
  Manifest m;
  m.generation = ParsePod<uint64_t>(body + 4);
  m.journal_floor = ParsePod<uint64_t>(body + 12);
  const uint32_t name_len = ParsePod<uint32_t>(body + 20);
  if (name_len > kMaxNameLen ||
      body_len != sizeof(uint32_t) + 2 * sizeof(uint64_t) + sizeof(uint32_t) +
                      name_len) {
    return DataLossError("manifest " + path +
                         " declares an implausible name length " +
                         std::to_string(name_len));
  }
  m.index_file.assign(body + 24, name_len);

  const uint32_t stored = ParsePod<uint32_t>(body + body_len);
  const uint32_t computed = Crc32(body, body_len);
  if (stored != computed) {
    return DataLossError("manifest " + path + " checksum mismatch");
  }
  if (m.index_file.empty() ||
      m.index_file.find('/') != std::string::npos) {
    return DataLossError("manifest " + path +
                         " names an invalid index file '" + m.index_file +
                         "'");
  }
  return m;
}

}  // namespace kdv
