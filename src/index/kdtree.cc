#include "index/kdtree.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace kdv {

namespace {

// Bounding box over an index range via indirection (build-time only).
Rect RangeMbr(const PointSet& points, const std::vector<uint32_t>& idx,
              size_t begin, size_t end, int dim) {
  Rect mbr(dim);
  for (size_t i = begin; i < end; ++i) mbr.Expand(points[idx[i]]);
  return mbr;
}

}  // namespace

KdTree::KdTree(PointSet points, Options options) {
  KDV_CHECK_MSG(!points.empty(), "KdTree requires a non-empty point set");
  dim_ = points[0].dim();
  for (const Point& p : points) {
    KDV_CHECK_MSG(p.dim() == dim_, "KdTree points must share dimensionality");
  }
  const size_t leaf_size = std::max<size_t>(options.leaf_size, 1);

  // Phase 1: build the split structure over an index array, so the
  // input-order permutation is available to callers with per-point payloads.
  original_indices_.resize(points.size());
  std::iota(original_indices_.begin(), original_indices_.end(), 0u);
  nodes_.reserve(2 * (points.size() / leaf_size + 1));
  BuildRecursive(points, 0, points.size(), leaf_size);

  // Phase 2: gather points into tree order and fill per-node aggregates.
  points_.reserve(points.size());
  for (uint32_t idx : original_indices_) points_.push_back(points[idx]);
  for (Node& node : nodes_) {
    node.stats =
        NodeStats::Compute(points_.data() + node.begin, node.count());
  }
  BuildSoA();
}

void KdTree::BuildSoA() {
  const size_t n = points_.size();
  soa_coords_.resize(static_cast<size_t>(dim_) * n);
  for (int d = 0; d < dim_; ++d) {
    double* out = soa_coords_.data() + static_cast<size_t>(d) * n;
    for (size_t i = 0; i < n; ++i) out[i] = points_[i][d];
  }
}

int32_t KdTree::BuildRecursive(const PointSet& input, size_t begin,
                               size_t end, size_t leaf_size) {
  KDV_DCHECK(begin < end);
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.emplace_back();
  // Note: nodes_ may reallocate during recursion; never hold a Node&
  // across a recursive call.
  nodes_[id].begin = static_cast<uint32_t>(begin);
  nodes_[id].end = static_cast<uint32_t>(end);

  if (end - begin > leaf_size) {
    const int split_dim =
        RangeMbr(input, original_indices_, begin, end, dim_)
            .WidestDimension();
    const size_t mid = begin + (end - begin) / 2;
    std::nth_element(original_indices_.begin() + begin,
                     original_indices_.begin() + mid,
                     original_indices_.begin() + end,
                     [&input, split_dim](uint32_t a, uint32_t b) {
                       return input[a][split_dim] < input[b][split_dim];
                     });
    // nth_element guarantees begin < mid < end, so both sides are non-empty
    // even when all coordinates along split_dim are equal.
    int32_t left = BuildRecursive(input, begin, mid, leaf_size);
    int32_t right = BuildRecursive(input, mid, end, leaf_size);
    nodes_[id].left = left;
    nodes_[id].right = right;
  }
  return id;
}

StatusOr<std::unique_ptr<KdTree>> KdTree::FromSerialized(
    PointSet points, std::vector<uint32_t> original_indices,
    std::vector<Node> nodes) {
  if (points.empty()) return DataLossError("serialized tree has no points");
  if (nodes.empty()) return DataLossError("serialized tree has no nodes");
  if (original_indices.size() != points.size()) {
    return DataLossError("permutation size does not match point count");
  }
  const size_t n = points.size();
  const int dim = points[0].dim();
  for (const Point& p : points) {
    if (p.dim() != dim) {
      return DataLossError("serialized points have mixed dimensionality");
    }
  }
  // The permutation must be a bijection on [0, n).
  std::vector<bool> seen(n, false);
  for (uint32_t idx : original_indices) {
    if (idx >= n || seen[idx]) {
      return DataLossError(
          "original_indices is not a permutation of [0, num_points)");
    }
    seen[idx] = true;
  }

  // Validate the structure with an explicit DFS: every node reached exactly
  // once from the root, children partition their parent, root covers all.
  if (nodes[0].begin != 0 || nodes[0].end != n) {
    return DataLossError("root node does not cover all points");
  }
  std::vector<bool> visited(nodes.size(), false);
  std::vector<int32_t> stack = {0};
  size_t reached = 0;
  while (!stack.empty()) {
    int32_t id = stack.back();
    stack.pop_back();
    if (id < 0 || static_cast<size_t>(id) >= nodes.size()) {
      return DataLossError("node child id out of range");
    }
    if (visited[id]) {
      return DataLossError("node graph contains a cycle or shared child");
    }
    visited[id] = true;
    ++reached;
    const Node& node = nodes[id];
    if (node.begin >= node.end || node.end > n) {
      return DataLossError("node point range is empty or out of bounds");
    }
    const bool has_left = node.left >= 0;
    const bool has_right = node.right >= 0;
    if (has_left != has_right) {
      return DataLossError("internal node is missing one child");
    }
    if (has_left) {
      if (static_cast<size_t>(node.left) >= nodes.size() ||
          static_cast<size_t>(node.right) >= nodes.size()) {
        return DataLossError("node child id out of range");
      }
      const Node& l = nodes[node.left];
      const Node& r = nodes[node.right];
      if (l.begin != node.begin || l.end != r.begin || r.end != node.end) {
        return DataLossError("child ranges do not partition their parent");
      }
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }
  if (reached != nodes.size()) {
    return DataLossError("unreachable nodes in serialized tree");
  }

  std::unique_ptr<KdTree> tree(new KdTree());
  tree->dim_ = dim;
  tree->points_ = std::move(points);
  tree->original_indices_ = std::move(original_indices);
  tree->nodes_ = std::move(nodes);
  for (Node& node : tree->nodes_) {
    node.stats = NodeStats::Compute(tree->points_.data() + node.begin,
                                    node.count());
  }
  tree->BuildSoA();
  return tree;
}

int KdTree::Depth() const { return DepthRecursive(root()); }

int KdTree::DepthRecursive(int32_t id) const {
  const Node& n = nodes_[id];
  if (n.IsLeaf()) return 1;
  return 1 + std::max(DepthRecursive(n.left), DepthRecursive(n.right));
}

}  // namespace kdv
