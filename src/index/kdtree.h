// kd-tree over a point set with per-node aggregate statistics.
//
// This is the shared indexing framework of the paper (§3.2): all compared
// methods (aKDE, tKDC, KARL, QUAD) run the same best-first refinement over
// this tree and differ only in their per-node bound functions. Scikit-learn's
// KernelDensity uses the same structure.
#ifndef QUADKDV_INDEX_KDTREE_H_
#define QUADKDV_INDEX_KDTREE_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "geom/point.h"
#include "index/node_stats.h"
#include "util/status.h"

namespace kdv {

// Immutable balanced kd-tree. Nodes are stored in a flat array; points are
// reordered into a contiguous array so each node owns the slice
// [begin, end). Median splits on the widest MBR dimension give O(log n)
// depth.
//
// Thread safety: the tree is deeply immutable once the constructor returns
// (the accessors are all const and there is no caching), so it may be read
// concurrently without synchronization.
class KdTree {
 public:
  struct Node {
    NodeStats stats;
    uint32_t begin = 0;  // first point index (into points())
    uint32_t end = 0;    // one past last point index
    int32_t left = -1;   // child node ids; -1 for leaves
    int32_t right = -1;

    bool IsLeaf() const { return left < 0; }
    size_t count() const { return end - begin; }
  };

  struct Options {
    // Maximum number of points per leaf; Scikit-learn's default is 40.
    size_t leaf_size = 32;
  };

  // Builds the tree. `points` must be non-empty with uniform dimensionality.
  explicit KdTree(PointSet points) : KdTree(std::move(points), Options()) {}
  KdTree(PointSet points, Options options);

  // Reassembles a tree from serialized parts (see index/serialization.h):
  // points in tree order, the build permutation, and the node structure
  // (stats are recomputed). Every structural invariant is re-verified;
  // returns DataLoss with a description of the first violated invariant
  // rather than trusting the input.
  static StatusOr<std::unique_ptr<KdTree>> FromSerialized(
      PointSet points, std::vector<uint32_t> original_indices,
      std::vector<Node> nodes);

  KdTree(const KdTree&) = delete;
  KdTree& operator=(const KdTree&) = delete;
  KdTree(KdTree&&) = default;
  KdTree& operator=(KdTree&&) = default;

  int32_t root() const { return 0; }
  const Node& node(int32_t id) const { return nodes_[id]; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t num_points() const { return points_.size(); }
  int dim() const { return dim_; }

  // Points in tree order; node(id) owns points()[node.begin, node.end).
  const PointSet& points() const { return points_; }

  // Structure-of-arrays mirror of points(): coordinate d of point i lives at
  // coords(d)[i], contiguous across i. Built once at construction (and after
  // FromSerialized); the persisted index format is unchanged. This is the
  // layout the batched leaf kernels (core/leaf_kernel.h) stream over — the
  // AoS Point array strides kMaxDim+1 doubles per point, so a 2-d leaf scan
  // touches ~8x more cache lines than these arrays do.
  const double* coords(int d) const {
    KDV_DCHECK(d >= 0 && d < dim_);
    return soa_coords_.data() + static_cast<size_t>(d) * points_.size();
  }

  // Build permutation: points()[i] was points[original_index(i)] in the
  // input. Lets callers attach per-point payloads (labels, regression
  // targets, weights) to the reordered layout.
  uint32_t original_index(size_t i) const { return original_indices_[i]; }
  const std::vector<uint32_t>& original_indices() const {
    return original_indices_;
  }

  // Depth of the tree (root = 1). For diagnostics.
  int Depth() const;

 private:
  KdTree() = default;  // for FromSerialized

  int32_t BuildRecursive(const PointSet& input, size_t begin, size_t end,
                         size_t leaf_size);
  int DepthRecursive(int32_t id) const;
  // Fills soa_coords_ from points_ (dim-major, num_points-stride).
  void BuildSoA();

  PointSet points_;
  std::vector<uint32_t> original_indices_;
  std::vector<Node> nodes_;
  std::vector<double> soa_coords_;  // dim_ arrays of num_points() doubles
  int dim_ = 0;
};

}  // namespace kdv

#endif  // QUADKDV_INDEX_KDTREE_H_
