// Append-only update journal for dynamic KDV point streams.
//
// A dynamic deployment (live crime feeds, sensor streams — see
// dynamic/dynamic_kdv.h) applies insert/remove batches continuously.
// Rebuilding and re-persisting the whole index per batch would dominate, so
// durability comes from a write-ahead journal instead: every batch is
// CRC-framed and fsynced into the current segment before it is
// acknowledged, and a periodic checkpoint (serve/recovery_manager.h) folds
// the accumulated segments into a fresh checksummed index, committed by an
// atomic manifest flip (index/manifest.h).
//
// On-disk layout, rooted at a wal directory:
//
//   wal/seg-00000001.kdvj            segments, monotonically numbered
//   segment  = magic "KDVJ", uint32 version = 1, uint64 sequence
//   record   = uint32 payload_len, uint32 payload_crc, payload
//   payload  = uint8 op (1 insert / 2 remove), uint8 dim,
//              uint16 reserved = 0, uint32 count, count*dim doubles
//
// Crash semantics, the part that matters:
//   * Append fsyncs before returning OK (Options::fsync_each_append), so an
//     acknowledged batch survives a crash.
//   * A crash mid-append leaves a torn tail. Replay() verifies every frame;
//     a record that is short, oversized, or fails its CRC *at the end of
//     the highest-numbered segment* is a crash artifact: replay stops
//     before it, physically truncates the segment back to the last good
//     boundary, and reports the dropped bytes. The same damage anywhere
//     else cannot have been caused by a single crash and is reported as
//     DataLoss (bit rot / operator error) for the recovery manager to
//     quarantine.
//   * Rotation (new segment past max_segment_bytes, or an explicit
//     Rotate() at checkpoint time) never rewrites old segments, so folded
//     segments can be unlinked lazily.
//
// Thread safety: none. The journal is owned by the single writer that owns
// the dynamic dataset; concurrent readers go through checkpointed indexes.
#ifndef QUADKDV_INDEX_JOURNAL_H_
#define QUADKDV_INDEX_JOURNAL_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "geom/point.h"
#include "util/status.h"

namespace kdv {

enum class JournalOp : uint8_t {
  kInsert = 1,
  kRemove = 2,
};

const char* JournalOpName(JournalOp op);  // "insert" / "remove"

struct JournalReplayStats {
  uint64_t segments_scanned = 0;
  uint64_t records_applied = 0;
  uint64_t points_applied = 0;
  bool tail_truncated = false;        // a torn tail was found and cut
  uint64_t torn_bytes_truncated = 0;  // bytes dropped from that tail
};

class Journal {
 public:
  struct Options {
    uint64_t max_segment_bytes = 4ull << 20;  // rotate past this size
    bool fsync_each_append = true;            // fsync before acking a batch
  };

  // Opens the journal rooted at directory `dir` (created if missing,
  // including one empty segment numbered `floor` when none exist at or
  // above it). `floor` is the manifest's journal_floor: segments below it
  // are folded into the index already and are ignored (and may be deleted
  // with DropSegmentsBelow).
  static StatusOr<std::unique_ptr<Journal>> Open(const std::string& dir,
                                                 uint64_t floor,
                                                 Options options);
  static StatusOr<std::unique_ptr<Journal>> Open(const std::string& dir,
                                                 uint64_t floor) {
    return Open(dir, floor, Options());
  }
  ~Journal();

  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Durably appends one batch. `points` must be non-empty with uniform
  // dimensionality. On a non-OK return the tail may be torn; the next
  // Replay() repairs it and the batch must be considered not applied.
  Status Append(JournalOp op, const PointSet& points);

  // Replays every record in segments [floor, tail] in order, invoking `fn`
  // per batch. Repairs a torn tail (see above). Stops and returns the
  // first non-OK status from `fn`, or DataLoss for non-tail corruption.
  using ReplayFn = std::function<Status(JournalOp, const PointSet&)>;
  Status Replay(const ReplayFn& fn, JournalReplayStats* stats);

  // Closes the current segment and starts an empty successor; subsequent
  // appends land there. Returns the new tail's sequence number — the floor
  // a checkpoint that folds everything before it should commit.
  StatusOr<uint64_t> Rotate();

  // Unlinks segments numbered below `floor` (folded by a checkpoint) and
  // raises the replay floor. Best-effort: a segment that cannot be removed
  // is left for the next recovery sweep.
  void DropSegmentsBelow(uint64_t floor);

  uint64_t floor() const { return floor_; }
  uint64_t tail_sequence() const { return tail_seq_; }
  const std::string& dir() const { return dir_; }

  // "seg-%08llu.kdvj" for a sequence number.
  static std::string SegmentFileName(uint64_t sequence);

 private:
  Journal(std::string dir, uint64_t floor, Options options);

  std::string SegmentPath(uint64_t sequence) const;
  // Creates segment `sequence` (header only, fsynced) and points the write
  // fd at it.
  Status StartSegment(uint64_t sequence);
  Status CloseWriteFd();

  const std::string dir_;
  const Options options_;
  uint64_t floor_ = 1;
  uint64_t tail_seq_ = 0;
  uint64_t tail_bytes_ = 0;  // size of the tail segment
  int write_fd_ = -1;
};

}  // namespace kdv

#endif  // QUADKDV_INDEX_JOURNAL_H_
