#include "index/node_stats.h"

#include <algorithm>

#include "util/check.h"

namespace kdv {

NodeStats NodeStats::Compute(const Point* points, size_t count) {
  KDV_CHECK(count > 0);
  const int d = points[0].dim();

  NodeStats s;
  s.count_ = count;
  s.dim_ = d;
  s.mbr_ = Rect(d);
  s.sum_ = Point(d);
  s.sum_sq_norm_p_ = Point(d);
  s.outer_.assign(static_cast<size_t>(d) * d, 0.0);

  for (size_t i = 0; i < count; ++i) {
    const Point& p = points[i];
    KDV_DCHECK(p.dim() == d);
    s.mbr_.Expand(p);
    double sq = p.SquaredNorm();
    s.sum_sq_norm_ += sq;
    s.sum_quartic_norm_ += sq * sq;
    for (int a = 0; a < d; ++a) {
      s.sum_[a] += p[a];
      s.sum_sq_norm_p_[a] += sq * p[a];
      for (int b = 0; b < d; ++b) {
        s.outer_[static_cast<size_t>(a) * d + b] += p[a] * p[b];
      }
    }
  }
  return s;
}

double NodeStats::SumSquaredDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  double s1 = static_cast<double>(count_) * q.SquaredNorm() -
              2.0 * Dot(q, sum_) + sum_sq_norm_;
  // Guard against negative values from floating-point cancellation; the true
  // quantity is a sum of squares.
  return std::max(s1, 0.0);
}

void NodeStats::SumSquaredDistancesRange(const Rect& query_rect,
                                         double* s1_min,
                                         double* s1_max) const {
  KDV_DCHECK(query_rect.dim() == dim_);
  const double n = static_cast<double>(count_);
  double lo_total = sum_sq_norm_;
  double hi_total = sum_sq_norm_;
  for (int d = 0; d < dim_; ++d) {
    const double a = sum_[d];
    const double lo = query_rect.lo(d);
    const double hi = query_rect.hi(d);
    // f(t) = n*t^2 - 2*a*t, convex with vertex at a/n.
    const double vertex = std::clamp(a / n, lo, hi);
    lo_total += n * vertex * vertex - 2.0 * a * vertex;
    const double f_lo = n * lo * lo - 2.0 * a * lo;
    const double f_hi = n * hi * hi - 2.0 * a * hi;
    hi_total += std::max(f_lo, f_hi);
  }
  // Same cancellation guard as SumSquaredDistances: the true quantity is a
  // sum of squares, so negatives are floating-point artifacts.
  *s1_min = std::max(lo_total, 0.0);
  *s1_max = std::max(hi_total, *s1_min);
}

double NodeStats::SumQuarticDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  const double q_sq = q.SquaredNorm();
  const double q_dot_a = Dot(q, sum_);
  const double q_dot_v = Dot(q, sum_sq_norm_p_);

  // q^T C q in O(d^2).
  double qcq = 0.0;
  const int d = dim_;
  for (int a = 0; a < d; ++a) {
    double row = 0.0;
    const double* c_row = outer_.data() + static_cast<size_t>(a) * d;
    for (int b = 0; b < d; ++b) row += c_row[b] * q[b];
    qcq += q[a] * row;
  }

  double s2 = static_cast<double>(count_) * q_sq * q_sq -
              4.0 * q_sq * q_dot_a - 4.0 * q_dot_v + 2.0 * q_sq * sum_sq_norm_ +
              sum_quartic_norm_ + 4.0 * qcq;
  return std::max(s2, 0.0);
}

}  // namespace kdv
