#include "index/node_stats.h"

#include <algorithm>

#include "util/check.h"

namespace kdv {

NodeStats NodeStats::Compute(const Point* points, size_t count) {
  KDV_CHECK(count > 0);
  const int d = points[0].dim();

  NodeStats s;
  s.count_ = count;
  s.dim_ = d;
  s.mbr_ = Rect(d);
  s.sum_ = Point(d);
  s.sum_sq_norm_p_ = Point(d);
  s.outer_.assign(static_cast<size_t>(d) * d, 0.0);

  for (size_t i = 0; i < count; ++i) {
    const Point& p = points[i];
    KDV_DCHECK(p.dim() == d);
    s.mbr_.Expand(p);
    double sq = p.SquaredNorm();
    s.sum_sq_norm_ += sq;
    s.sum_quartic_norm_ += sq * sq;
    for (int a = 0; a < d; ++a) {
      s.sum_[a] += p[a];
      s.sum_sq_norm_p_[a] += sq * p[a];
      for (int b = 0; b < d; ++b) {
        s.outer_[static_cast<size_t>(a) * d + b] += p[a] * p[b];
      }
    }
  }
  return s;
}

double NodeStats::SumSquaredDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  double s1 = static_cast<double>(count_) * q.SquaredNorm() -
              2.0 * Dot(q, sum_) + sum_sq_norm_;
  // Guard against negative values from floating-point cancellation; the true
  // quantity is a sum of squares.
  return std::max(s1, 0.0);
}

double NodeStats::SumQuarticDistances(const Point& q) const {
  KDV_DCHECK(q.dim() == dim_);
  const double q_sq = q.SquaredNorm();
  const double q_dot_a = Dot(q, sum_);
  const double q_dot_v = Dot(q, sum_sq_norm_p_);

  // q^T C q in O(d^2).
  double qcq = 0.0;
  const int d = dim_;
  for (int a = 0; a < d; ++a) {
    double row = 0.0;
    const double* c_row = outer_.data() + static_cast<size_t>(a) * d;
    for (int b = 0; b < d; ++b) row += c_row[b] * q[b];
    qcq += q[a] * row;
  }

  double s2 = static_cast<double>(count_) * q_sq * q_sq -
              4.0 * q_sq * q_dot_a - 4.0 * q_dot_v + 2.0 * q_sq * sum_sq_norm_ +
              sum_quartic_norm_ + 4.0 * qcq;
  return std::max(s2, 0.0);
}

}  // namespace kdv
