#include "progressive/progressive.h"

#include <cmath>
#include <deque>

#include "util/check.h"
#include "util/failpoint.h"

namespace kdv {

std::vector<RegionOp> QuadTreeSchedule(int width, int height) {
  KDV_CHECK(width > 0 && height > 0);
  std::vector<RegionOp> schedule;
  schedule.reserve(static_cast<size_t>(width) * height * 4 / 3 + 4);

  struct Region {
    int x0, y0, x1, y1;
  };
  std::deque<Region> frontier;  // BFS: coarse levels first
  frontier.push_back({0, 0, width, height});

  while (!frontier.empty()) {
    Region r = frontier.front();
    frontier.pop_front();
    const int w = r.x1 - r.x0;
    const int h = r.y1 - r.y0;
    if (w <= 0 || h <= 0) continue;

    RegionOp op;
    op.x0 = r.x0;
    op.y0 = r.y0;
    op.x1 = r.x1;
    op.y1 = r.y1;
    op.cx = r.x0 + w / 2;
    op.cy = r.y0 + h / 2;
    schedule.push_back(op);

    if (w == 1 && h == 1) continue;
    const int mx = r.x0 + w / 2;
    const int my = r.y0 + h / 2;
    // Split into up to four children. Degenerate strips (w==1 or h==1)
    // split along the long axis only.
    if (w > 1 && h > 1) {
      frontier.push_back({r.x0, r.y0, mx, my});
      frontier.push_back({mx, r.y0, r.x1, my});
      frontier.push_back({r.x0, my, mx, r.y1});
      frontier.push_back({mx, my, r.x1, r.y1});
    } else if (w > 1) {
      frontier.push_back({r.x0, r.y0, mx, r.y1});
      frontier.push_back({mx, r.y0, r.x1, r.y1});
    } else {
      frontier.push_back({r.x0, r.y0, r.x1, my});
      frontier.push_back({r.x0, my, r.x1, r.y1});
    }
  }
  return schedule;
}

std::vector<RegionOp> RowMajorSchedule(int width, int height) {
  KDV_CHECK(width > 0 && height > 0);
  std::vector<RegionOp> schedule;
  schedule.reserve(static_cast<size_t>(width) * height);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      schedule.push_back({x, y, x + 1, y + 1, x, y});
    }
  }
  return schedule;
}

namespace {

// Records why the schedule stopped early and keeps the stats in sync.
void MarkStopped(ProgressiveResult* result, StopReason reason) {
  result->completed = false;
  if (reason == StopReason::kDeadline) {
    result->deadline_expired = true;
    result->stats.deadline_expired = true;
  }
  if (reason == StopReason::kCancel) {
    result->cancelled = true;
    result->stats.cancelled = true;
  }
}

}  // namespace

ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    const QueryControl& control,
                                    const std::vector<RegionOp>& schedule) {
  ProgressiveResult result;
  result.frame = DensityFrame(grid.width(), grid.height());
  std::vector<uint8_t> evaluated(grid.num_pixels(), 0);
  std::vector<double> pixel_value(grid.num_pixels(), 0.0);

  Timer timer;
  result.completed = true;

  result.status = KDV_FAILPOINT_STATUS("progressive.render");
  if (!result.status.ok()) {
    // Injected entry fault: the (all-zero, finite) frame is still well
    // formed for the degradation ladder.
    result.completed = false;
    result.stats.completed = false;
    result.stats.status = result.status;
    result.stats.seconds = timer.ElapsedSeconds();
    return result;
  }

  for (const RegionOp& op : schedule) {
    StopReason stop = control.CheckStop();
    if (stop != StopReason::kNone) {
      MarkStopped(&result, stop);
      break;
    }
    Status op_status = KDV_FAILPOINT_STATUS("progressive.op");
    if (!op_status.ok()) {
      result.status = op_status;
      result.stats.status = op_status;
      result.completed = false;
      break;
    }
    const size_t center_idx = grid.PixelIndex(op.cx, op.cy);
    double value;
    bool interrupted = false;
    if (evaluated[center_idx]) {
      // A coarser level already evaluated this pixel; reuse its value.
      value = pixel_value[center_idx];
    } else {
      EvalResult r =
          evaluator.EvaluateEps(grid.PixelCenter(op.cx, op.cy), eps, control);
      value = r.estimate;
      if (r.numeric_fault) ++result.numeric_faults;
      if (!std::isfinite(value)) {
        // Hardening backstop: a frame value must never be NaN/Inf.
        value = 0.0;
        ++result.numeric_faults;
      }
      interrupted = r.interrupted;
      evaluated[center_idx] = 1;
      pixel_value[center_idx] = value;
      ++result.pixels_evaluated;
      ++result.stats.queries;
      result.stats.iterations += r.iterations;
      result.stats.points_scanned += r.points_scanned;
    }
    // Paint the region; pixels already holding evaluated values keep them
    // (they are at least as accurate as this coarser representative).
    for (int y = op.y0; y < op.y1; ++y) {
      for (int x = op.x0; x < op.x1; ++x) {
        size_t idx = grid.PixelIndex(x, y);
        if (!evaluated[idx]) result.frame.values[idx] = value;
      }
    }
    result.frame.values[center_idx] = pixel_value[center_idx];
    if (interrupted) {
      // The stop fired mid-query; its wider-interval estimate was still
      // painted (better than leaving the coarser representative).
      MarkStopped(&result, control.CheckStop());
      break;
    }
  }

  result.stats.numeric_faults = result.numeric_faults;
  result.stats.seconds = timer.ElapsedSeconds();
  result.stats.completed = result.completed;
  return result;
}

ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    double budget_seconds,
                                    const std::vector<RegionOp>& schedule) {
  Deadline deadline(budget_seconds);
  QueryControl control;
  control.deadline = &deadline;
  return RenderProgressive(evaluator, grid, eps, control, schedule);
}

ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    double budget_seconds) {
  return RenderProgressive(evaluator, grid, eps, budget_seconds,
                           QuadTreeSchedule(grid.width(), grid.height()));
}

}  // namespace kdv
