// Progressive visualization framework (paper §6).
//
// Instead of evaluating pixels in row-major order, pixels are evaluated in a
// quad-tree order: the center pixel of the frame first (its density value
// stands in for the whole frame), then the centers of the four quadrants,
// and so on — each evaluated pixel's value fills its surrounding region
// until refined. The user (or a Deadline / CancelToken) can stop at any time
// t and keep a coarse-to-fine approximation of the full color map.
//
// Robustness contract: the returned frame is always fully painted and
// finite, whatever stopped the run — an expired budget, a cancellation, a
// numeric fault (clamped and counted), or an injected failpoint error
// (reported in `status`).
#ifndef QUADKDV_PROGRESSIVE_PROGRESSIVE_H_
#define QUADKDV_PROGRESSIVE_PROGRESSIVE_H_

#include <cstdint>
#include <vector>

#include "core/evaluator.h"
#include "core/kdv_runner.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/timer.h"
#include "viz/frame.h"
#include "viz/pixel_grid.h"

namespace kdv {

// One step of the progressive schedule: evaluate the density at pixel
// (cx, cy) and paint it over the region [x0, x1) x [y0, y1).
struct RegionOp {
  int x0 = 0, y0 = 0;  // region top-left (inclusive)
  int x1 = 0, y1 = 0;  // region bottom-right (exclusive)
  int cx = 0, cy = 0;  // representative pixel
};

// Builds the quad-tree evaluation schedule for a width x height frame
// (breadth-first: coarse levels before fine levels, as in paper Fig. 13).
// Every pixel appears as the representative of at least one op, so running
// the full schedule evaluates the complete frame.
std::vector<RegionOp> QuadTreeSchedule(int width, int height);

// Row-major schedule (each op is a single pixel). The non-progressive
// baseline order, used in ablations.
std::vector<RegionOp> RowMajorSchedule(int width, int height);

// Result of a progressive render.
struct ProgressiveResult {
  DensityFrame frame;             // fully painted, finite values
  uint64_t pixels_evaluated = 0;  // distinct pixels given exact/ε values
  bool completed = false;         // full schedule ran before a stop
  bool deadline_expired = false;  // stopped by the deadline
  bool cancelled = false;         // stopped by the CancelToken
  uint64_t numeric_faults = 0;    // pixel values clamped by hardening
  Status status;                  // non-OK iff an internal fault aborted
  BatchStats stats;
};

// Runs the schedule under `control` (deadline + cancellation), evaluating
// εKDV per representative pixel with the evaluator's method.
ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    const QueryControl& control,
                                    const std::vector<RegionOp>& schedule);

// Budget-seconds convenience forms (<= 0 means run to completion).
ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    double budget_seconds,
                                    const std::vector<RegionOp>& schedule);

// Convenience overload using the quad-tree schedule.
ProgressiveResult RenderProgressive(const KdeEvaluator& evaluator,
                                    const PixelGrid& grid, double eps,
                                    double budget_seconds);

}  // namespace kdv

#endif  // QUADKDV_PROGRESSIVE_PROGRESSIVE_H_
