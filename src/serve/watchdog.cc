#include "serve/watchdog.h"

#include <algorithm>
#include <chrono>

#include "obs/metrics.h"

namespace kdv {

namespace {
constexpr size_t kMaxReports = 1024;

obs::Counter* WatchdogKillCounter() {
  static obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("kdv_watchdog_kills_total");
  return c;
}
}  // namespace

RenderWatchdog::RenderWatchdog(Options options, StallFn on_stall)
    : options_(options),
      on_stall_(std::move(on_stall)),
      clock_(options.clock != nullptr ? options.clock : CurrentClock()) {}

RenderWatchdog::~RenderWatchdog() { Stop(); }

std::shared_ptr<WatchEntry> RenderWatchdog::Watch(uint64_t request_id,
                                                  double budget_seconds) {
  auto entry = std::make_shared<WatchEntry>();
  entry->request_id = request_id;
  entry->budget_seconds = budget_seconds;
  entry->started = Timer(clock_);
  if (!options_.enabled) return entry;  // inert handle: never monitored
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return entry;
  entries_.push_back(entry);
  progress_.push_back({0, entry->started.ElapsedSeconds()});
  EnsureMonitorLocked();
  return entry;
}

void RenderWatchdog::Unwatch(const std::shared_ptr<WatchEntry>& entry) {
  if (entry == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i] == entry) {
      entries_.erase(entries_.begin() + i);
      progress_.erase(progress_.begin() + i);
      return;
    }
  }
}

int RenderWatchdog::SweepOnce() {
  std::vector<StallReport> fired;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < entries_.size(); ++i) {
      WatchEntry& entry = *entries_[i];
      if (entry.WasKilled()) continue;
      const double elapsed = entry.started.ElapsedSeconds();
      const uint64_t beat = entry.heartbeat.load(std::memory_order_relaxed);
      Progress& prog = progress_[i];
      if (beat != prog.last_heartbeat) {
        prog.last_heartbeat = beat;
        prog.last_change_seconds = elapsed;
      }

      bool overrun = false;
      if (entry.budget_seconds > 0.0) {
        overrun = elapsed > options_.deadline_multiple * entry.budget_seconds;
      } else if (options_.no_budget_kill_seconds > 0.0) {
        overrun = elapsed > options_.no_budget_kill_seconds;
      }
      // The no-progress criterion only applies once the render has
      // heartbeated at least once: a silent entry is either a path with no
      // heartbeat instrumentation (the coarse GridKde tier) or wedged before
      // its first poll point, and the overrun criterion covers the latter.
      const bool stalled =
          beat > 0 && options_.no_progress_seconds > 0.0 &&
          elapsed - prog.last_change_seconds >= options_.no_progress_seconds;
      if (!overrun && !stalled) continue;

      entry.kill.RequestCancel();
      entry.killed.store(true, std::memory_order_release);
      kills_.fetch_add(1, std::memory_order_relaxed);
      WatchdogKillCounter()->Increment();

      StallReport report;
      report.request_id = entry.request_id;
      report.elapsed_seconds = elapsed;
      report.budget_seconds = entry.budget_seconds;
      report.heartbeat = beat;
      report.no_progress = stalled && !overrun;
      fired.push_back(report);
      reports_.push_back(report);
    }
    if (reports_.size() > kMaxReports) {
      reports_.erase(reports_.begin(),
                     reports_.begin() + (reports_.size() - kMaxReports));
    }
  }
  // Callbacks run outside the lock: the service's handler takes its own
  // locks (breaker, counters) and must be free to call back into us.
  if (on_stall_ != nullptr) {
    for (const StallReport& report : fired) on_stall_(report);
  }
  return static_cast<int>(fired.size());
}

void RenderWatchdog::EnsureMonitorLocked() {
  if (monitor_running_ || stopping_ || !options_.start_monitor) return;
  monitor_running_ = true;
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void RenderWatchdog::MonitorLoop() {
  const double period = std::max(options_.poll_interval_seconds, 1e-4);
  for (;;) {
    // The stop waker cuts the wait short, so Stop() never blocks for a
    // poll period — only for at most one in-progress sweep.
    clock_->WaitFor(period, &stop_waker_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    SweepOnce();
  }
}

void RenderWatchdog::Stop() {
  std::thread joinee;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (monitor_running_) {
      joinee = std::move(monitor_);
      monitor_running_ = false;
    }
  }
  stop_waker_.Set();
  if (joinee.joinable()) joinee.join();
}

std::vector<StallReport> RenderWatchdog::stall_reports() const {
  std::lock_guard<std::mutex> lock(mu_);
  return reports_;
}

}  // namespace kdv
