// Resilient render front-end: QUAD under a budget, with graceful degradation.
//
// The guaranteed-bound path (RenderProgressive over the quad-tree schedule)
// is the primary renderer. When it cannot finish — deadline expired, fault
// injected, numeric trouble — the ResilientRenderer walks a degradation
// ladder instead of failing the request:
//
//   1. kCertified    full εKDV frame, every pixel within the requested ε.
//   2. kProgressive  partially refined quad-tree frame: fully painted and
//                    finite, coarse where refinement did not reach.
//   3. kCoarse       GridKde (binned convolution) frame: no error guarantee,
//                    but a recognizable density map.
//   4. kFlat         all-zero frame. Returned only when even the coarse
//                    path is unavailable (injected fault, non-2d data).
//
// Invariants, whatever happens inside:
//   * The returned frame always has the requested dimensions and only
//     finite values (ScrubNonFinite is the last line of defense).
//   * Cancellation always yields a non-OK kCancelled status: a cancelled
//     request must not be mistaken for a served one.
//   * In fail-fast mode (degrade = false) a missed deadline yields a non-OK
//     kDeadlineExceeded status instead of a lower tier.
#ifndef QUADKDV_SERVE_RESILIENT_RENDERER_H_
#define QUADKDV_SERVE_RESILIENT_RENDERER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>

#include "approx/grid_kde.h"
#include "core/evaluator.h"
#include "core/kdv_runner.h"
#include "obs/trace.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "viz/frame.h"
#include "viz/parallel_render.h"
#include "viz/pixel_grid.h"

namespace kdv {

// Quality tier actually delivered, best (certified bounds) to worst (flat).
enum class QualityTier {
  kCertified,
  kProgressive,
  kCoarse,
  kFlat,
};

// Human-readable tier name ("certified", "progressive", ...).
const char* QualityTierName(QualityTier tier);

struct ResilientRenderOptions {
  double eps = 0.05;  // εKDV target for the certified path

  // Wall-clock budget. < 0: no deadline (run to completion). == 0: treated
  // as already expired — the certified path is skipped entirely.
  double budget_seconds = -1.0;

  // true: walk the degradation ladder on deadline/fault. false: fail fast
  // with a non-OK status (kdvtool --on-deadline=fail).
  bool degrade = true;

  // Optional cooperative cancellation; may outlive the call.
  const CancelToken* cancel = nullptr;

  // Second, service-owned kill switch (the render watchdog's). Checked at
  // the same poll points as `cancel` and reported identically (kCancelled);
  // kept separate so the watchdog can kill a request without sharing the
  // client's token.
  const CancelToken* force_cancel = nullptr;

  // Liveness counter bumped on every cooperative poll inside the
  // refinement loops; the watchdog reads it to tell "slow" from "wedged".
  std::atomic<uint64_t>* heartbeat = nullptr;

  // Best tier the render is allowed to claim/attempt — the brownout
  // governor's lever. kCertified (default): full ladder. kProgressive: the
  // parallel certified fan-out is skipped and a completed frame ships as
  // kProgressive with no ε certificate (the refinement work still honors
  // `eps`, which the governor raises alongside this cap). kCoarse or
  // kFlat: straight to the GridKde fallback, as RenderCoarseOnly.
  QualityTier max_tier = QualityTier::kCertified;

  // Options for the GridKde coarse fallback.
  GridKde::Options coarse;

  // Intra-frame parallelism of the certified path. When `tile_pool` is set
  // and `parallel.num_threads` resolves above 1 — or whenever
  // `parallel.tile_shared` is on, which pays as a work reduction even
  // single-threaded — Render() first attempts a tile-parallel whole-frame
  // εKDV render (viz/parallel_render.h) on the
  // remaining budget; a frame that completes cleanly ships as kCertified.
  // If the budget (or a cancellation/fault) cuts the tiled frame short, the
  // renderer falls through to the serial progressive ladder, which degrades
  // to a fully painted frame instead of one with unclaimed-tile holes.
  // The pool is borrowed, never owned, and must outlive the call.
  // When parallel.tile_shared is on and parallel.frontier_cache is null, the
  // renderer substitutes its own cross-frame FrontierCache, so repeated
  // renders of one viewport (progressive passes, pan-and-return) skip the
  // tile region pass. parallel.cache_epoch should carry the serving epoch id.
  RenderOptions parallel;
  Executor* tile_pool = nullptr;

  // Optional per-request trace span (obs/trace.h). When set, the renderer
  // attributes its time to the tile_pass / refinement / coarse / scrub
  // stages. Borrowed; must outlive the call.
  obs::TraceSpan* trace = nullptr;
};

struct RenderOutcome {
  DensityFrame frame;  // always sized to the grid, always finite
  QualityTier tier = QualityTier::kFlat;

  // ε actually certified for every pixel of the frame; < 0 when the frame
  // carries no guarantee (any tier below kCertified).
  double certified_eps = -1.0;

  bool deadline_expired = false;
  bool cancelled = false;
  uint64_t numeric_faults = 0;   // pixel envelopes clamped by hardening
  uint64_t pixels_scrubbed = 0;  // non-finite pixels zeroed at the end

  // First fault encountered. OK for a clean (possibly degraded-by-deadline)
  // render; non-OK for cancellation, fail-fast deadline misses, and
  // internal/injected faults (which may still ship a degraded frame).
  Status status = OkStatus();

  // Stats of the certified-path attempt (zeroed if it was skipped).
  BatchStats stats;

  bool ok() const { return status.ok(); }
};

// Thread safety: the evaluator, its KdTree, and its bound profiles are all
// immutable after construction, so Render/RenderCoarseOnly may be called
// concurrently from any number of threads on one shared instance (the
// property the concurrent RenderService in serve/render_service.h relies
// on). The coarse-tier GridKde is built once per (domain, options) and
// shared behind a mutex-guarded single-entry cache — a browned-out service
// serves the coarse tier for every request, and rebinning the full point
// set each time would make the "cheap" tier scale with dataset size.
class ResilientRenderer {
 public:
  // `evaluator` must outlive the renderer.
  explicit ResilientRenderer(const KdeEvaluator* evaluator);

  // Renders `grid` under `options`, never throwing and never returning a
  // non-finite pixel. See the ladder description above.
  RenderOutcome Render(const PixelGrid& grid,
                       const ResilientRenderOptions& options) const;

  // Skips the certified path entirely and serves the coarse tier (or flat
  // if unavailable). Used when the caller already knows the certified path
  // is not worth attempting: circuit breaker open, deadline spent while the
  // request sat in a queue. Honors options.cancel; same frame invariants
  // as Render.
  RenderOutcome RenderCoarseOnly(const PixelGrid& grid,
                                 const ResilientRenderOptions& options) const;

 private:
  // Fills outcome->frame from the GridKde fallback (tier kCoarse), or
  // leaves the flat frame (tier kFlat) if the fallback is unavailable.
  void RenderCoarse(const PixelGrid& grid, const ResilientRenderOptions& opts,
                    RenderOutcome* outcome) const;

  // Returns the cached GridKde for (domain, options), building it under the
  // lock on a miss so concurrent coarse renders share one build instead of
  // each paying for their own.
  std::shared_ptr<const GridKde> CoarseKde(const Rect& domain,
                                           const GridKde::Options& opts) const;

  const KdeEvaluator* evaluator_;

  // Cross-frame tile-shared frontier cache (viz/frontier_cache.h), used by
  // the parallel certified path when the caller enables tile_shared without
  // supplying a cache of their own. Internally synchronized.
  mutable FrontierCache frontier_cache_;

  mutable std::mutex coarse_mu_;
  mutable std::shared_ptr<const GridKde> coarse_cache_;
  mutable Rect coarse_domain_;          // cache key: domain...
  mutable GridKde::Options coarse_opts_;  // ...and fallback options
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_RESILIENT_RENDERER_H_
