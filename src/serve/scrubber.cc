#include "serve/scrubber.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <vector>

#include "index/serialization.h"
#include "obs/metrics.h"
#include "util/crc32.h"
#include "util/failpoint.h"

namespace kdv {

namespace {

// Registry mirror of the scrubber's work and verdicts. Ticks run on a
// background cadence, so these are never hot.
struct ScrubObs {
  obs::Counter* ticks;
  obs::Counter* crc_slices;
  obs::Counter* mismatches;
  ScrubObs() {
    auto& r = obs::MetricsRegistry::Global();
    ticks = r.GetCounter("kdv_scrub_ticks_total");
    crc_slices = r.GetCounter("kdv_scrub_crc_slices_total");
    mismatches = r.GetCounter("kdv_scrub_mismatches_total");
  }
  static ScrubObs& Get() {
    static ScrubObs& o = *new ScrubObs();
    return o;
  }
};

// xorshift64*: deterministic, seedable, and independent of the libstdc++
// distributions (which are not bit-stable across versions).
uint64_t NextRand(uint64_t* state) {
  uint64_t x = *state;
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  *state = x;
  return x * 0x2545F4914F6CDD1Dull;
}

}  // namespace

IntegrityScrubber::IntegrityScrubber(Options options, EvaluatorFn evaluator,
                                     CorruptionFn on_corruption)
    : options_(std::move(options)),
      evaluator_(std::move(evaluator)),
      on_corruption_(std::move(on_corruption)),
      clock_(options_.clock != nullptr ? options_.clock : CurrentClock()),
      rng_state_(options_.seed != 0 ? options_.seed : 0x5C12BBE2u) {}

IntegrityScrubber::~IntegrityScrubber() { Stop(); }

Status IntegrityScrubber::CrcSliceTick(std::string* corrupt_reason) {
  if (options_.index_path.empty()) return OkStatus();

  std::FILE* f = std::fopen(options_.index_path.c_str(), "rb");
  if (f == nullptr) {
    // The published index vanished out from under us — that is rot of the
    // most decisive kind.
    *corrupt_reason = "index file " + options_.index_path + " is unreadable";
    return OkStatus();
  }
  std::fseek(f, 0, SEEK_END);
  const long end = std::ftell(f);
  const uint64_t size = end < 0 ? 0 : static_cast<uint64_t>(end);

  if (have_baseline_ && size != baseline_size_ && sweep_offset_ == 0) {
    // Size changed between passes: either a checkpoint replaced the file
    // (benign) or it was truncated. The full loader decides.
    std::fclose(f);
    StatusOr<std::unique_ptr<KdTree>> reload = LoadKdTree(options_.index_path);
    if (!reload.ok()) {
      *corrupt_reason = "index file " + options_.index_path +
                        " changed size and fails verification: " +
                        reload.status().message();
      return OkStatus();
    }
    have_baseline_ = false;  // restart the sweep against the new file
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rebaselines;
    }
    return OkStatus();
  }

  if (sweep_offset_ >= size) {
    // Pass complete (or empty file). Compare/establish the baseline.
    std::fclose(f);
    bool mismatch = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.crc_passes;
    }
    if (!have_baseline_) {
      have_baseline_ = true;
      baseline_crc_ = sweep_crc_;
      baseline_size_ = size;
    } else if (sweep_crc_ != baseline_crc_) {
      mismatch = true;
    }
    sweep_offset_ = 0;
    sweep_crc_ = 0;
    if (mismatch) {
      // The bytes changed. An atomic checkpoint replacement produces a
      // different-but-valid file; rot produces one the checksummed loader
      // rejects.
      StatusOr<std::unique_ptr<KdTree>> reload =
          LoadKdTree(options_.index_path);
      if (!reload.ok()) {
        *corrupt_reason = "index file " + options_.index_path +
                          " CRC drifted and fails verification: " +
                          reload.status().message();
        return OkStatus();
      }
      have_baseline_ = false;
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rebaselines;
    }
    return OkStatus();
  }

  if (std::fseek(f, static_cast<long>(sweep_offset_), SEEK_SET) != 0) {
    std::fclose(f);
    *corrupt_reason =
        "index file " + options_.index_path + " seek failed mid-sweep";
    return OkStatus();
  }
  std::vector<char> buf(std::min<uint64_t>(options_.slice_bytes > 0
                                               ? options_.slice_bytes
                                               : 64 * 1024,
                                           size - sweep_offset_));
  const size_t got = std::fread(buf.data(), 1, buf.size(), f);
  std::fclose(f);
  if (got == 0) {
    *corrupt_reason =
        "index file " + options_.index_path + " read failed mid-sweep";
    return OkStatus();
  }
  sweep_crc_ = Crc32Update(sweep_crc_, buf.data(), got);
  sweep_offset_ += got;
  ScrubObs::Get().crc_slices->Increment();
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.crc_slices;
  return OkStatus();
}

Status IntegrityScrubber::PixelOracleTick(std::string* corrupt_reason) {
  if (options_.pixel_samples_per_tick <= 0) return OkStatus();
  const KdeEvaluator* evaluator = evaluator_ != nullptr ? evaluator_() : nullptr;
  if (evaluator == nullptr) return OkStatus();
  const PointSet& points = evaluator->tree().points();
  if (points.empty() || evaluator->bounds() == nullptr) return OkStatus();

  for (int i = 0; i < options_.pixel_samples_per_tick; ++i) {
    const size_t idx = NextRand(&rng_state_) % points.size();
    const Point& q = points[idx];
    EvalResult certified = evaluator->EvaluateEps(q, options_.pixel_eps);
    const double exact = evaluator->EvaluateExact(q);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.pixel_checks;
    }
    if (certified.numeric_fault) continue;  // hardening already flagged it
    // The certified interval must bracket the exact oracle, up to FP drift
    // between the two summation orders.
    const double slack =
        options_.pixel_tolerance * (1.0 + std::abs(exact));
    if (exact < certified.lower - slack || exact > certified.upper + slack) {
      char detail[160];
      std::snprintf(detail, sizeof(detail),
                    "certified interval [%.17g, %.17g] excludes exact %.17g "
                    "at sample %zu",
                    certified.lower, certified.upper, exact, idx);
      *corrupt_reason = detail;
      return OkStatus();
    }
  }
  return OkStatus();
}

Status IntegrityScrubber::HandleCorruption(const std::string& reason) {
  ScrubObs::Get().mismatches->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.mismatches;
    stats_.last_verdict = reason;
  }
  Status healed = OkStatus();
  if (on_corruption_ != nullptr) {
    healed = on_corruption_(reason);
    if (healed.ok()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.recoveries;
    }
  }
  // The sweep state refers to an epoch/file that just got replaced (or is
  // known bad): start over either way.
  have_baseline_ = false;
  sweep_offset_ = 0;
  sweep_crc_ = 0;
  if (!healed.ok()) {
    return DataLossError("scrubber found corruption (" + reason +
                         ") and recovery failed: " +
                         std::string(healed.message()));
  }
  return DataLossError("scrubber found corruption (" + reason +
                       "); recovered");
}

Status IntegrityScrubber::RunTick() {
  if (!options_.enabled) return OkStatus();
  ScrubObs::Get().ticks->Increment();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.ticks;
  }
  if (options_.defer != nullptr && options_.defer()) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.deferred;
    return OkStatus();
  }

  Status injected = KDV_FAILPOINT_STATUS("scrub.corrupt");
  if (!injected.ok()) {
    return HandleCorruption("injected mismatch (failpoint scrub.corrupt)");
  }

  std::string reason;
  KDV_RETURN_IF_ERROR(CrcSliceTick(&reason));
  if (!reason.empty()) return HandleCorruption(reason);
  KDV_RETURN_IF_ERROR(PixelOracleTick(&reason));
  if (!reason.empty()) return HandleCorruption(reason);
  return OkStatus();
}

void IntegrityScrubber::Start() {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || stopping_) return;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void IntegrityScrubber::Loop() {
  const double period = std::max(options_.interval_seconds, 1e-4);
  for (;;) {
    // The stop waker cuts the wait short, so Stop() latency is one
    // in-progress tick at most, never a scrub interval.
    clock_->WaitFor(period, &stop_waker_);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
    }
    // Verdicts are recorded in stats_ / the corruption callback; the tick's
    // status is the test-visible channel and intentionally unused here.
    (void)RunTick();
  }
}

void IntegrityScrubber::Stop() {
  std::thread joinee;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    if (running_) {
      joinee = std::move(thread_);
      running_ = false;
    }
  }
  stop_waker_.Set();
  if (joinee.joinable()) joinee.join();
}

IntegrityScrubber::Stats IntegrityScrubber::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kdv
