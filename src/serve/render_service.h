// Concurrent render service: a multi-threaded, overload-safe front end
// over ResilientRenderer.
//
// The paper's framework is embarrassingly parallel across requests — the
// kd-tree and bound profiles are read-only after construction — so serving
// many users is a concurrency-control problem, not an algorithmic one.
// RenderService supplies the production pieces:
//
//   * Thread pool (util/thread_pool.h): fixed workers, bounded FIFO queue.
//   * Admission control: Submit() rejects with kResourceExhausted when the
//     queue is full or too many requests are in flight, instead of letting
//     latency grow without bound. Shedding is explicit and countable.
//   * Queue-aware deadlines: a request's budget starts at admission, so
//     time spent waiting in the queue counts against it. A request whose
//     budget died in the queue is served coarse (degrade mode) or failed
//     with kDeadlineExceeded (fail-fast mode) without touching the
//     certified path.
//   * Retry with jittered exponential backoff (util/backoff.h) for
//     transient certified-path faults (kInternal, e.g. injected
//     failpoints), bounded by max_attempts and by the request's remaining
//     budget.
//   * Circuit breaker on the certified path: after breaker_threshold
//     consecutive faults the breaker opens and requests are served the
//     coarse tier directly (or rejected with kUnavailable in fail-fast
//     mode); after breaker_cooldown_seconds one half-open probe is allowed
//     through, and its success closes the breaker again.
//   * Graceful drain: Stop() rejects new submits, finishes all admitted
//     requests, and never deadlocks. The destructor stops the service.
//   * Epoch-based hot-swap: SwapEvaluator() publishes a new evaluator
//     without stopping the service. Each request snapshots the current
//     epoch (a shared_ptr) at execution start; in-flight renders finish on
//     the epoch they started with, and an old epoch is destroyed only when
//     its last in-flight render drops the reference. No request is ever
//     dropped or served a half-swapped evaluator.
//   * Readiness (serve/health.h): Health() reports kStarting until an
//     evaluator is published, whatever SetHealth() last recorded
//     (kRecovering while a recovery manager replays state), and kDegraded
//     whenever the circuit breaker is open.
//
// Thread safety: Submit/Stop/SwapEvaluator/Health/stats may be called from
// any thread. The shared KdeEvaluator is used strictly const-concurrently
// (see the audit note on ResilientRenderer).
#ifndef QUADKDV_SERVE_RENDER_SERVICE_H_
#define QUADKDV_SERVE_RENDER_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>

#include "serve/health.h"
#include "serve/overload_governor.h"
#include "serve/resilient_renderer.h"
#include "serve/watchdog.h"
#include "util/backoff.h"
#include "util/cancel.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace kdv {

// Certified-path health tracker (closed → open → half-open → closed).
// Factored out of the service so the state machine is unit-testable with an
// injected clock. Thread-safe.
class CircuitBreaker {
 public:
  struct Options {
    int failure_threshold = 5;        // consecutive faults that trip it
    double cooldown_seconds = 0.25;   // open time before the half-open probe
  };
  enum class State { kClosed, kOpen, kHalfOpen };

  // `clock` provides monotonic seconds; null uses CurrentClock() (resolved
  // once, at construction).
  explicit CircuitBreaker(Options options, const Clock* clock = nullptr);

  // True if this request may attempt the certified path. While open, flips
  // to half-open once the cooldown has elapsed and admits exactly one
  // probe; everyone else is told to short-circuit.
  bool AllowCertified();

  // Reports the outcome of a certified-path attempt that AllowCertified
  // admitted. Success closes a half-open breaker and clears the fault run;
  // a fault extends the run, trips the breaker at the threshold, and
  // reopens a half-open breaker immediately.
  void RecordSuccess();
  void RecordFault();

  State state() const;
  uint64_t trips() const;  // times the breaker transitioned closed/half-open -> open

  // One recorded state change, for observability and for the simulator's
  // state-machine legality checker. Legal edges: Closed→Open,
  // Open→HalfOpen, HalfOpen→Open, HalfOpen→Closed.
  struct Transition {
    double at_seconds = 0.0;  // breaker clock
    State from = State::kClosed;
    State to = State::kClosed;
  };
  // State-change log, oldest first, capped at an internal bound (the cap
  // drops the oldest entries).
  std::vector<Transition> transitions() const;

  static const char* StateName(State state);

 private:
  double Now() const;
  void RecordTransitionLocked(double now, State from, State to);

  const Options options_;
  const Clock* const clock_;

  mutable std::mutex mu_;
  State state_ = State::kClosed;
  int consecutive_faults_ = 0;
  bool probe_in_flight_ = false;
  double opened_at_ = 0.0;
  uint64_t trips_ = 0;
  std::vector<Transition> transitions_;
};

// Classifies render-path faults a retry can plausibly fix. Only transient
// internal faults (kInternal — e.g. an injected failpoint or a clamped
// numeric fault) qualify. Everything else is definitively non-retryable:
// retrying kResourceExhausted amplifies the very overload that shed the
// work, kCancelled/kDeadlineExceeded mean the client (or watchdog) already
// gave up, and kUnavailable means the breaker is open on purpose.
bool IsRetryableRenderFault(StatusCode code);

// Per-request options. The render knobs mirror ResilientRenderOptions;
// budget_seconds is measured from Submit() (queue time included).
struct ServeRequestOptions {
  double eps = 0.05;
  // < 0: no deadline. 0: already expired at admission. > 0: wall-clock
  // budget starting the moment Submit() admits the request.
  double budget_seconds = -1.0;
  bool degrade = true;  // false: fail fast instead of serving lower tiers
  const CancelToken* cancel = nullptr;  // must outlive the request
  GridKde::Options coarse;
};

// What the service delivered for one admitted request.
struct ServeOutcome {
  RenderOutcome render;  // frame (always finite), tier, render-path status

  // Authoritative request status: render.status, or kUnavailable for a
  // fail-fast rejection while the breaker is open.
  Status status = OkStatus();

  double queue_seconds = 0.0;  // admission -> first execution
  double total_seconds = 0.0;  // admission -> completion
  int attempts = 0;            // certified-path attempts (0 if short-circuited)
  bool breaker_open = false;   // served/failed without the certified path
  // Id of the evaluator epoch the render executed against (0 if the request
  // never reached execution). Lets an external oracle — the simulator's
  // ε-invariant checker — verify the frame against the evaluator it was
  // actually rendered with, even across hot-swaps.
  uint64_t epoch = 0;

  bool ok() const { return status.ok(); }
};

// Monotonic counters, readable at any time via RenderService::stats().
struct ServiceStats {
  uint64_t submitted = 0;       // Submit() calls
  uint64_t admitted = 0;        // accepted into the queue
  uint64_t shed = 0;            // rejected with kResourceExhausted
  uint64_t completed = 0;       // outcomes delivered (any status)
  uint64_t served_ok = 0;       // completed with an OK status
  uint64_t cancelled = 0;       // completed with kCancelled
  uint64_t deadline_expired = 0;  // outcomes that ran out of budget
  uint64_t degraded = 0;        // served below the certified tier
  uint64_t retries = 0;         // certified-path retry attempts
  uint64_t faults = 0;          // certified-path faults observed
  uint64_t breaker_trips = 0;   // closed/half-open -> open transitions
  uint64_t unavailable = 0;     // requests short-circuited by an open breaker
  uint64_t tier_certified = 0;
  uint64_t tier_progressive = 0;
  uint64_t tier_coarse = 0;
  uint64_t tier_flat = 0;
  uint64_t swaps = 0;  // SwapEvaluator() publications (initial one included)
  // Currently published epoch. epoch_published distinguishes "no evaluator
  // yet" from whatever the id happens to read — epoch ids start at 1 today,
  // but consumers must not infer liveness from the raw number, and the JSON
  // emitters render the epoch as null until epoch_published is true.
  uint64_t epoch = 0;
  bool epoch_published = false;
  // Tile-shared renders served from a cached frontier (0 unless
  // Options::tile_shared is on).
  uint64_t frontier_cache_hits = 0;

  // Runtime self-defense (zero unless the governor/watchdog are enabled).
  uint64_t brownout_applied = 0;   // requests served below their asked tier
  uint64_t brownout_shed = 0;      // submits rejected at the governor ceiling
  uint64_t watchdog_kills = 0;     // renders force-cancelled by the watchdog
  int governor_level = 0;          // current OverloadGovernor::Level
  int governor_max_level = 0;      // worst level reached
  double governor_pressure = 0.0;  // last combined pressure signal
};

class RenderService {
 public:
  struct Options {
    int num_threads = 4;
    size_t max_queue = 32;     // waiting requests beyond the running ones
    size_t max_in_flight = 0;  // admitted-but-unfinished cap; 0 = max_queue + num_threads
    int max_attempts = 3;      // certified-path attempts per request
    // Intra-frame parallelism: threads per certified render, including the
    // request worker itself (0 = hardware_concurrency, 1 = serial). Above 1
    // the service owns one shared helper pool of intra_frame_threads - 1
    // workers, used by every in-flight frame's tile fan-out. The helper pool
    // is distinct from the request pool, so a frame never waits on its own
    // pool (no submit cycle), and an exhausted helper pool merely sheds
    // tiles back onto the request worker.
    int intra_frame_threads = 1;
    int tile_rows = 16;  // rows per tile work item (see viz/parallel_render.h)
    // Shared-traversal tile refinement for the parallel certified path (see
    // viz/parallel_render.h). Each epoch's renderer keeps its own frontier
    // cache, keyed by the epoch id, so progressive passes and repeated
    // viewport renders skip the per-tile region pass and a hot-swap can
    // never serve stale frontiers.
    bool tile_shared = false;
    BackoffPolicy backoff;
    uint64_t backoff_seed = 0x5EEDBACC0FFull;
    CircuitBreaker::Options breaker;
    // The service's time source: breaker cooldowns, queue/total latencies,
    // retry backoff sleeps. Null uses CurrentClock() (resolved once, at
    // construction) — under the simulator that is the virtual clock, and
    // tests install a ManualClock to step through cooldowns without
    // sleeping. Also handed to the governor and watchdog unless they carry
    // their own clock.
    Clock* clock = nullptr;
    // Execution substrates, borrowed (must outlive the service). `executor`
    // runs request jobs; null makes the service own a ThreadPool of
    // num_threads/max_queue. `tile_executor` serves the intra-frame tile
    // fan-out; null falls back to an owned helper pool when
    // intra_frame_threads resolves above 1. The simulator injects its
    // SimExecutor through these so every task the service runs is
    // cooperatively scheduled.
    Executor* executor = nullptr;
    Executor* tile_executor = nullptr;

    // Runtime self-defense. Both default to disabled so the service's
    // behavior is bit-for-bit the pre-governor one unless the operator
    // opts in (kdvtool serve-sim --governor / --watchdog).
    //
    // When governor.enabled, every Submit() consults the brownout governor:
    // past its hard ceiling the request is shed (kResourceExhausted), and
    // at execution time degrade-mode requests are served at the governor's
    // level (certified → progressive → coarse) with a relaxed ε. When
    // governor.in_flight_capacity is 0 it is set to max_in_flight.
    OverloadGovernor::Options governor;
    // When watchdog.enabled, every render is registered with the watchdog,
    // which force-cancels wedged renders (see serve/watchdog.h) and trips
    // the circuit breaker through the same fault path as kInternal errors.
    RenderWatchdog::Options watchdog;
  };

  // `evaluator` must outlive the service and is shared const-concurrently
  // by all workers. Publishes it as epoch 1 and starts in kServing.
  RenderService(const KdeEvaluator* evaluator, Options options);

  // Starts with no evaluator published: Health() is kStarting and Submit()
  // rejects with kUnavailable until the first SwapEvaluator(). This is the
  // recovery-manager path — the service front door comes up (and reports
  // readiness) while state is still being replayed.
  explicit RenderService(Options options);

  ~RenderService();  // Stop()

  RenderService(const RenderService&) = delete;
  RenderService& operator=(const RenderService&) = delete;

  // Admission-controlled asynchronous render. On success the future
  // resolves to the request's ServeOutcome (possibly degraded/cancelled —
  // inspect outcome.status). Rejections are synchronous:
  //   kResourceExhausted — queue full or max_in_flight reached (shed)
  //   kUnavailable       — Stop() has been called
  // `grid` must stay alive until the future resolves.
  StatusOr<std::future<ServeOutcome>> Submit(
      const PixelGrid& grid, const ServeRequestOptions& request);

  // Graceful drain: rejects new submits, finishes all admitted requests.
  void Stop();

  // Atomically publishes `evaluator` as a new epoch. Requests admitted
  // after this call render against it; requests already executing finish on
  // the epoch they snapshotted. The evaluator must outlive every request
  // that can still observe its epoch (in practice: the service). Promotes
  // kStarting/kRecovering health to kServing.
  void SwapEvaluator(const KdeEvaluator* evaluator);

  // Readiness for load balancers (see serve/health.h). SetHealth records an
  // explicit state (e.g. kRecovering during replay, kDegraded after a
  // lossy recovery); Health() additionally reports kDegraded whenever the
  // recorded state is kServing but the circuit breaker is open.
  ServiceHealth Health() const;
  void SetHealth(ServiceHealth health);

  ServiceStats stats() const;
  CircuitBreaker::State breaker_state() const { return breaker_.state(); }
  std::vector<CircuitBreaker::Transition> breaker_transitions() const {
    return breaker_.transitions();
  }
  int num_threads() const { return pool_->num_threads(); }
  size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }

  // The evaluator of the currently published epoch (null before the first
  // SwapEvaluator). For the integrity scrubber's oracle checks; the caller
  // must keep the evaluator alive across swaps (the service only borrows
  // it).
  const KdeEvaluator* CurrentEvaluator() const;

  // Self-defense observability (serve-sim, tests).
  OverloadGovernor::Stats governor_stats() const {
    return governor_.stats();
  }
  std::vector<OverloadGovernor::Transition> governor_transitions() const {
    return governor_.transitions();
  }
  std::vector<StallReport> watchdog_stall_reports() const {
    return watchdog_.stall_reports();
  }
  // Runs one watchdog sweep synchronously. The simulator's entry point:
  // with watchdog.start_monitor = false no monitor thread exists, and the
  // sim driver calls this at deterministic points of virtual time instead.
  int WatchdogSweepOnce() { return watchdog_.SweepOnce(); }

 private:
  struct Job;

  // One published evaluator generation. Immutable once published; shared by
  // every request that snapshotted it while it was current.
  struct Epoch {
    Epoch(const KdeEvaluator* evaluator, uint64_t id)
        : renderer(evaluator), evaluator(evaluator), id(id) {}
    ResilientRenderer renderer;
    const KdeEvaluator* evaluator;
    uint64_t id;
  };

  std::shared_ptr<const Epoch> CurrentEpoch() const;
  void Execute(const std::shared_ptr<Job>& job);
  void FinishOutcome(const std::shared_ptr<Job>& job, ServeOutcome outcome);
  void SleepMs(double ms);

  const Options options_;
  Clock* const clock_;  // never null (Options::clock or CurrentClock)
  const size_t max_in_flight_;
  CircuitBreaker breaker_;
  OverloadGovernor governor_;
  // Declared after breaker_: the stall callback records breaker faults, so
  // the breaker must outlive the monitor thread.
  RenderWatchdog watchdog_;
  // Request executor: Options::executor if injected, else owned_pool_.
  std::unique_ptr<ThreadPool> owned_pool_;
  Executor* pool_;
  // Shared tile-helper substrate for intra-frame parallelism; null when
  // intra_frame_threads resolves to 1 and no tile_executor was injected.
  // The owned pool is destroyed only after ~RenderService has drained
  // pool_, so no frame can still be fanning out tiles.
  std::unique_ptr<ThreadPool> owned_tile_pool_;
  Executor* tile_pool_ = nullptr;
  // Set by Stop(): cuts short any in-progress retry-backoff sleep so drain
  // latency is bounded by the running render, not by pending backoff.
  Waker stop_waker_;

  std::mutex backoff_mu_;  // guards backoff_ (shared RNG stream)
  Backoff backoff_;

  mutable std::mutex epoch_mu_;      // guards epoch_ publication only
  std::shared_ptr<const Epoch> epoch_;  // null until the first publication
  std::atomic<uint64_t> swaps_{0};
  std::atomic<ServiceHealth> health_{ServiceHealth::kStarting};

  std::atomic<size_t> in_flight_{0};
  std::atomic<uint64_t> next_request_id_{0};
  // Trace-span ids, separate from next_request_id_: the watchdog hands out
  // one id per *attempt*, spans need one per *request*.
  std::atomic<uint64_t> next_trace_id_{0};

  struct Counters {
    std::atomic<uint64_t> submitted{0}, admitted{0}, shed{0}, completed{0},
        served_ok{0}, cancelled{0}, deadline_expired{0}, degraded{0},
        retries{0}, faults{0}, unavailable{0}, tier_certified{0},
        tier_progressive{0}, tier_coarse{0}, tier_flat{0},
        brownout_applied{0}, brownout_shed{0}, watchdog_kills{0},
        frontier_cache_hits{0};
  };
  mutable Counters counters_;
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_RENDER_SERVICE_H_
