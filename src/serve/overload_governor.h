// Brownout governor: smooth quality degradation under overload.
//
// The admission controller in RenderService is binary — a request is either
// served at full quality or shed with kResourceExhausted. Real overload is
// rarely binary: before the queue overflows there is a band where the
// service could keep serving everyone by spending less per request, the way
// coreset-based KDE systems trade accuracy for load. The governor implements
// that band as a *brownout*: as pressure rises it lowers the starting tier
// of the ResilientRenderer ladder (certified → progressive → coarse) and
// relaxes the ε target, and only past a hard ceiling does it shed.
//
// Pressure model. Three normalized signals, combined by max() — the most
// saturated resource governs:
//
//   * queue wait:  EWMA of observed queue_seconds / queue_wait_saturation
//   * in-flight:   admitted-but-unfinished requests / max_in_flight
//   * memory:      MemBudget used_bytes / memory_budget_bytes (if budgeted)
//
// Levels and hysteresis. Pressure maps to a level (kNormal, kProgressive,
// kCoarse) with asymmetric transitions: escalation is immediate (overload
// hurts now), de-escalation requires pressure to stay below the entry
// threshold minus `exit_margin` for `recover_hold_seconds`, and steps down
// one level at a time. This makes the level sequence monotone in pressure
// spikes and free of flapping at a threshold boundary — the property the
// overload-chaos CI job asserts on the serve-sim transition log.
//
// Thread safety: all methods may be called concurrently.
#ifndef QUADKDV_SERVE_OVERLOAD_GOVERNOR_H_
#define QUADKDV_SERVE_OVERLOAD_GOVERNOR_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "serve/resilient_renderer.h"
#include "util/mem_budget.h"
#include "util/timer.h"

namespace kdv {

class OverloadGovernor {
 public:
  // Degradation level, best to worst. Maps onto ResilientRenderOptions
  // max_tier; kShed exists only in Decision (it is not a resting level).
  enum class Level : int {
    kNormal = 0,       // full certified ladder
    kProgressive = 1,  // certified fan-out off, no ε certificate
    kCoarse = 2,       // straight to the GridKde fallback
  };

  struct Options {
    // Off by default: brownout is opt-in (serve-sim --governor, tests), so
    // pre-governor service behavior is unchanged unless asked for.
    bool enabled = false;

    // Queue wait (seconds) considered fully saturated (pressure 1.0).
    double queue_wait_saturation_seconds = 0.5;
    // EWMA smoothing factor for queue-wait samples in (0, 1]; higher reacts
    // faster.
    double ewma_alpha = 0.3;
    // Half-life (seconds) for aging the queue-wait EWMA between Assess
    // calls. New samples only arrive when admitted requests dequeue, so
    // during a full shed the signal would otherwise freeze at its peak and
    // the governor would shed forever — a stale congestion reading must age
    // out so the service re-probes after a burst. 0 disables decay.
    double queue_wait_decay_halflife_seconds = 1.0;

    // Total in-flight capacity the in-flight signal is normalized by; the
    // service sets this to its max_in_flight.
    size_t in_flight_capacity = 0;
    // Ceiling on the in-flight signal's pressure contribution. A full
    // service has ratio exactly 1.0 >= shed_ceiling, but admission control
    // already rejects at max_in_flight — letting this signal shed too would
    // just retire the last admission slot early. Capped below the ceiling,
    // a full service browns out to coarse; shedding is left to admission
    // control and to the signals it cannot see (queue wait, memory).
    double in_flight_pressure_cap = 0.95;

    // Transient-memory ceiling for the memory signal; 0 disables it.
    uint64_t memory_budget_bytes = 0;

    // Pressure thresholds. Escalation at >= enter_*; shedding at >= shed.
    double enter_progressive = 0.55;
    double enter_coarse = 0.80;
    double shed_ceiling = 0.97;
    // De-escalation requires pressure < enter_threshold - exit_margin ...
    double exit_margin = 0.15;
    // ... sustained for this long (seconds) before each one-level step down.
    double recover_hold_seconds = 0.5;

    // ε relaxation: the effective eps is request eps times a multiplier that
    // ramps linearly from 1 at enter_progressive to this value at the shed
    // ceiling. 1.0 disables relaxation.
    double eps_max_multiplier = 4.0;

    // Monotonic time source; null uses CurrentClock() (resolved once, at
    // construction). The render service passes its own clock through here.
    const Clock* clock = nullptr;
  };

  // One admission/execution decision.
  struct Decision {
    Level level = Level::kNormal;
    double eps_multiplier = 1.0;
    bool shed = false;      // past the hard ceiling: reject, don't serve
    double pressure = 0.0;  // combined signal the decision was based on
  };

  // One recorded level change, for observability (serve-sim JSON).
  struct Transition {
    double at_seconds = 0.0;  // governor clock
    Level from = Level::kNormal;
    Level to = Level::kNormal;
    double pressure = 0.0;
  };

  struct Stats {
    uint64_t assessments = 0;
    uint64_t activations = 0;  // decisions below the certified level
    uint64_t sheds = 0;        // decisions past the hard ceiling
    Level level = Level::kNormal;
    Level max_level = Level::kNormal;  // worst level ever reached
    double pressure = 0.0;             // last combined pressure
    double queue_wait_ewma = 0.0;
  };

  explicit OverloadGovernor(Options options);

  // Signal feeds. RecordQueueWait folds one observed admission→execution
  // wait into the EWMA; RecordInFlight publishes the current in-flight
  // count.
  void RecordQueueWait(double seconds);
  void RecordInFlight(size_t in_flight);

  // Combines the current signals, applies the hysteresis state machine, and
  // returns the decision callers should act on. Called per request (both at
  // admission, for shedding, and at execution, for tier/eps), and
  // idempotent between signal changes.
  Decision Assess();

  Stats stats() const;
  // Level-change log, oldest first, capped at an internal bound (the cap
  // drops the oldest entries; under test loads it is never reached).
  std::vector<Transition> transitions() const;

  static const char* LevelName(Level level);

 private:
  double Now() const;
  double CombinedPressureLocked() const;
  // Entry threshold for `level` (the pressure at/above which it escalates).
  double EnterThreshold(Level level) const;

  const Options options_;
  const Clock* const clock_;

  mutable std::mutex mu_;
  double queue_wait_ewma_ = 0.0;
  bool have_queue_sample_ = false;
  // Clock time the EWMA was last sampled or decayed; drives the staleness
  // decay in Assess.
  double queue_wait_touched_ = 0.0;
  size_t in_flight_ = 0;
  Level level_ = Level::kNormal;
  Level max_level_ = Level::kNormal;
  double last_pressure_ = 0.0;
  // Start of the current below-exit-threshold stretch; < 0 when pressure is
  // not currently low enough to recover.
  double calm_since_ = -1.0;
  uint64_t assessments_ = 0;
  uint64_t activations_ = 0;
  uint64_t sheds_ = 0;
  std::vector<Transition> transitions_;
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_OVERLOAD_GOVERNOR_H_
