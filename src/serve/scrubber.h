// Online integrity scrubber: continuous self-verification of a live epoch.
//
// PR 5's RecoveryManager verifies every checksum at startup — and then
// trusts the loaded state forever. A long-running server accumulates risk
// the startup check cannot cover: on-disk rot under the published index
// file, and in-memory corruption (bad RAM, a stray write) in the tree or
// bound structures the evaluator serves from. The scrubber closes that gap
// with two continuous, low-priority checks:
//
//   * CRC sweep: re-reads the published index file in small slices (one
//     slice per tick, between requests), accumulating an incremental CRC32
//     across a full pass and comparing it to the baseline established by
//     the first pass. On mismatch the file is re-validated with the full
//     checksummed loader (LoadKdTree); a load failure confirms rot, while
//     a clean load (the file was atomically replaced by a checkpoint)
//     re-baselines instead of alarming.
//
//   * Pixel oracle check: samples random indexed points and evaluates each
//     through the certified bound path (EvaluateEps) and the exact
//     LeafSumAoS oracle (EvaluateExact). The quadratic bounds make this
//     cross-check nearly free: the exact value must lie inside the
//     certified [lower, upper] interval (within floating-point tolerance).
//     A violation means the tree, its node statistics, or the bound
//     profiles are corrupt in memory.
//
// Either failure invokes the host's corruption callback, which is expected
// to quarantine the epoch and run RecoveryManager::Recover + SwapEvaluator
// (see kdvtool serve-sim); in-flight requests finish on their snapshotted
// epoch, so self-healing drops nothing.
//
// The "scrub.corrupt" failpoint forces a simulated mismatch, so chaos tests
// can exercise the full quarantine → recover → hot-swap loop without
// real bit-flips.
#ifndef QUADKDV_SERVE_SCRUBBER_H_
#define QUADKDV_SERVE_SCRUBBER_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "core/evaluator.h"
#include "util/clock.h"
#include "util/status.h"

namespace kdv {

class IntegrityScrubber {
 public:
  struct Options {
    bool enabled = true;
    // Background cadence; one tick = one CRC slice + pixel_samples_per_tick
    // oracle checks.
    double interval_seconds = 0.05;
    // Bytes of index file re-read per tick. Small by design: the scrubber
    // must never compete with renders for I/O or cache.
    size_t slice_bytes = 64 * 1024;
    // Random certified-vs-exact cross-checks per tick; 0 disables them.
    int pixel_samples_per_tick = 2;
    // ε used for the certified side of the oracle check.
    double pixel_eps = 0.05;
    // Relative tolerance for exact-inside-[lb,ub]: FP drift between the
    // two evaluation orders is not corruption.
    double pixel_tolerance = 1e-9;
    uint64_t seed = 0x5C12BBE2u;
    // Published index file for the CRC sweep; empty disables it.
    std::string index_path;
    // Low-priority gate: when set and returning true, the tick is skipped
    // (e.g. "the service has requests in flight"). May be null.
    std::function<bool()> defer;
    // Time source for the background loop's cadence; null uses
    // CurrentClock() (resolved once, at construction).
    Clock* clock = nullptr;
  };

  struct Stats {
    uint64_t ticks = 0;
    uint64_t deferred = 0;
    uint64_t crc_slices = 0;      // slices read
    uint64_t crc_passes = 0;      // full-file passes completed
    uint64_t pixel_checks = 0;    // oracle comparisons performed
    uint64_t mismatches = 0;      // confirmed corruption events
    uint64_t rebaselines = 0;     // benign file replacements observed
    uint64_t recoveries = 0;      // corruption callbacks that returned OK
    std::string last_verdict;     // "" until something noteworthy happens
  };

  // Returns the evaluator of the currently published epoch (null while
  // starting/recovering). Called on the scrubber thread; must be safe to
  // call concurrently with swaps (the service's epoch snapshot provides
  // this).
  using EvaluatorFn = std::function<const KdeEvaluator*()>;
  // Invoked on confirmed corruption with a human-readable reason. The host
  // quarantines + recovers + hot-swaps, returning OK if the service healed.
  using CorruptionFn = std::function<Status(const std::string& reason)>;

  IntegrityScrubber(Options options, EvaluatorFn evaluator,
                    CorruptionFn on_corruption);
  ~IntegrityScrubber();  // Stop()

  IntegrityScrubber(const IntegrityScrubber&) = delete;
  IntegrityScrubber& operator=(const IntegrityScrubber&) = delete;

  // One synchronous scrub tick — the unit the background thread repeats.
  // Returns OK when nothing was found (including deferred/disabled ticks);
  // a non-OK status describes confirmed corruption (after the callback ran).
  Status RunTick();

  void Start();  // idempotent; no-op when disabled
  void Stop();

  Stats stats() const;

 private:
  void Loop();
  // Advances the CRC sweep one slice. Sets *corrupt_reason on confirmed rot.
  Status CrcSliceTick(std::string* corrupt_reason);
  // Runs the configured number of oracle samples.
  Status PixelOracleTick(std::string* corrupt_reason);
  Status HandleCorruption(const std::string& reason);

  const Options options_;
  const EvaluatorFn evaluator_;
  const CorruptionFn on_corruption_;
  Clock* const clock_;

  mutable std::mutex mu_;
  // Set by Stop(): ends the loop's inter-tick wait immediately.
  Waker stop_waker_;
  bool stopping_ = false;
  bool running_ = false;
  std::thread thread_;

  // CRC sweep state (scrubber-thread only; stats under mu_).
  uint64_t sweep_offset_ = 0;
  uint32_t sweep_crc_ = 0;
  bool have_baseline_ = false;
  uint32_t baseline_crc_ = 0;
  uint64_t baseline_size_ = 0;

  uint64_t rng_state_;
  Stats stats_;
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_SCRUBBER_H_
