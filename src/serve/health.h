// Service readiness states surfaced by RenderService::Health().
//
// A load balancer (or kdvtool serve-sim's invariant checks) polls this to
// decide whether the process may receive traffic:
//
//   kStarting    process is up, no evaluator published yet — do not route
//   kRecovering  recovery manager is replaying state — do not route
//   kServing     an evaluator is published and the breaker is closed
//   kDegraded    serving, but impaired: the circuit breaker is open, or
//                recovery had to quarantine state (possible data loss) —
//                route only if there is no healthy replica
//
// Transitions are monotonic through startup (kStarting -> kRecovering ->
// kServing) and may oscillate kServing <-> kDegraded while live.
#ifndef QUADKDV_SERVE_HEALTH_H_
#define QUADKDV_SERVE_HEALTH_H_

namespace kdv {

enum class ServiceHealth {
  kStarting,
  kRecovering,
  kServing,
  kDegraded,
};

inline const char* ServiceHealthName(ServiceHealth health) {
  switch (health) {
    case ServiceHealth::kStarting:
      return "starting";
    case ServiceHealth::kRecovering:
      return "recovering";
    case ServiceHealth::kServing:
      return "serving";
    case ServiceHealth::kDegraded:
      return "degraded";
  }
  return "unknown";
}

}  // namespace kdv

#endif  // QUADKDV_SERVE_HEALTH_H_
