#include "serve/recovery_manager.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>
#include <utility>
#include <vector>

#include "data/datasets.h"
#include "index/manifest.h"
#include "index/serialization.h"
#include "obs/metrics.h"
#include "util/atomic_file.h"
#include "util/timer.h"

namespace kdv {

namespace {

namespace fs = std::filesystem;

constexpr char kManifestName[] = "MANIFEST";
constexpr char kWalDirName[] = "wal";
constexpr char kQuarantineSuffix[] = ".quarantine";

// Registry mirror of recovery activity. Recovery is rare and slow; the
// interesting signals are that it ran at all, what it quarantined, and how
// long it took.
struct RecoveryObs {
  obs::Counter* runs;
  obs::Counter* quarantined;
  obs::Histogram* seconds;
  RecoveryObs() {
    auto& r = obs::MetricsRegistry::Global();
    runs = r.GetCounter("kdv_recovery_runs_total");
    quarantined = r.GetCounter("kdv_recovery_quarantined_total");
    seconds = r.GetHistogram("kdv_recovery_seconds");
  }
  static RecoveryObs& Get() {
    static RecoveryObs& o = *new RecoveryObs();
    return o;
  }
};

// RAII: one Recover() call = one run counted and one duration sample, on
// every exit path; the quarantine tally is read from the report at the end.
class RecoveryRunScope {
 public:
  explicit RecoveryRunScope(const RecoveryReport* rep) : rep_(rep) {}
  ~RecoveryRunScope() {
    RecoveryObs& o = RecoveryObs::Get();
    o.runs->Increment();
    if (!rep_->quarantined.empty()) {
      o.quarantined->Increment(rep_->quarantined.size());
    }
    o.seconds->Record(timer_.ElapsedSeconds());
  }
  RecoveryRunScope(const RecoveryRunScope&) = delete;
  RecoveryRunScope& operator=(const RecoveryRunScope&) = delete;

 private:
  const RecoveryReport* rep_;
  Timer timer_;
};

std::string ManifestPath(const std::string& state_dir) {
  return state_dir + "/" + kManifestName;
}

std::string WalDir(const std::string& state_dir) {
  return state_dir + "/" + kWalDirName;
}

// Renames `path` to `path`.quarantine (clobbering an earlier quarantine of
// the same file) and records it. Removal failures are not fatal: recovery
// must make progress even on a read-mostly-broken disk.
void Quarantine(const std::string& path, RecoveryReport* report) {
  std::error_code ec;
  fs::rename(path, path + kQuarantineSuffix, ec);
  if (!ec) report->quarantined.push_back(path + kQuarantineSuffix);
}

// Parses an index-file generation out of `name`, tolerating a .quarantine
// suffix. Returns 0 (never a valid generation) on mismatch.
uint64_t ParseIndexGeneration(std::string name) {
  const size_t q = name.rfind(kQuarantineSuffix);
  if (q != std::string::npos && q == name.size() - std::strlen(kQuarantineSuffix)) {
    name.resize(q);
  }
  unsigned long long gen = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "index-%llu.kdv%c", &gen, &tail) != 1) {
    return 0;
  }
  return gen;
}

uint64_t ParseSegmentSequence(std::string name) {
  const size_t q = name.rfind(kQuarantineSuffix);
  if (q != std::string::npos && q == name.size() - std::strlen(kQuarantineSuffix)) {
    name.resize(q);
  }
  unsigned long long seq = 0;
  char tail = '\0';
  if (std::sscanf(name.c_str(), "seg-%llu.kdvj%c", &seq, &tail) != 1) {
    return 0;
  }
  return seq;
}

// Live index file names (no .quarantine) in `state_dir`, one per entry.
std::vector<std::pair<uint64_t, std::string>> ListIndexFiles(
    const std::string& state_dir) {
  std::vector<std::pair<uint64_t, std::string>> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(state_dir, ec)) {
    const std::string name = entry.path().filename();
    if (name.size() > std::strlen(kQuarantineSuffix) &&
        name.rfind(kQuarantineSuffix) ==
            name.size() - std::strlen(kQuarantineSuffix)) {
      continue;
    }
    const uint64_t gen = ParseIndexGeneration(name);
    if (gen != 0) files.emplace_back(gen, name);
  }
  std::sort(files.begin(), files.end());
  return files;
}

// Highest generation/sequence ever used in the directory, counting
// quarantined files, so fresh state never reuses a burned number.
uint64_t MaxIndexGeneration(const std::string& state_dir) {
  uint64_t max_gen = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(state_dir, ec)) {
    max_gen = std::max(max_gen, ParseIndexGeneration(entry.path().filename()));
  }
  return max_gen;
}

uint64_t MaxSegmentSequence(const std::string& wal_dir) {
  uint64_t max_seq = 0;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(wal_dir, ec)) {
    max_seq = std::max(max_seq, ParseSegmentSequence(entry.path().filename()));
  }
  return max_seq;
}

// Quarantines every live journal segment. Returns the floor a fresh
// journal should open at (one past every number ever seen).
uint64_t QuarantineJournal(const std::string& state_dir,
                           RecoveryReport* report) {
  const std::string wal = WalDir(state_dir);
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(wal, ec)) {
    const std::string name = entry.path().filename();
    if (name.size() > std::strlen(kQuarantineSuffix) &&
        name.rfind(kQuarantineSuffix) ==
            name.size() - std::strlen(kQuarantineSuffix)) {
      continue;
    }
    if (ParseSegmentSequence(name) != 0) Quarantine(entry.path(), report);
  }
  report->journal_quarantined = true;
  report->possible_data_loss = true;
  return MaxSegmentSequence(wal) + 1;
}

// Deletes uncommitted leftovers: index generations other than `keep_gen`
// (a checkpoint that crashed before its manifest flip) and *.kdvtmp temps
// from torn atomic writes, in both the state dir and the wal dir.
void CleanOrphans(const std::string& state_dir, uint64_t keep_gen,
                  RecoveryReport* report) {
  for (const auto& [gen, name] : ListIndexFiles(state_dir)) {
    if (gen == keep_gen) continue;
    std::error_code ec;
    if (fs::remove(state_dir + "/" + name, ec)) {
      ++report->orphan_indexes_removed;
    }
  }
  for (const std::string& dir : {state_dir, WalDir(state_dir)}) {
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      const std::string name = entry.path().filename();
      if (name.size() > 7 && name.rfind(".kdvtmp") == name.size() - 7) {
        std::error_code rm_ec;
        if (fs::remove(entry.path(), rm_ec)) ++report->stale_temps_removed;
      }
    }
  }
}

// Applies one journal batch to the live multiset. Removal matches by exact
// coordinate equality and drops one instance per batch point (swap-erase;
// order is not meaningful, consumers rebuild a tree anyway).
Status ApplyBatch(PointSet* live, JournalOp op, const PointSet& batch) {
  switch (op) {
    case JournalOp::kInsert:
      live->insert(live->end(), batch.begin(), batch.end());
      return OkStatus();
    case JournalOp::kRemove:
      for (const Point& p : batch) {
        auto it = std::find(live->begin(), live->end(), p);
        if (it == live->end()) {
          return DataLossError(
              "journal removes a point absent from the live set");
        }
        *it = live->back();
        live->pop_back();
      }
      return OkStatus();
  }
  return InternalError("unknown journal op");
}

StatusOr<std::unique_ptr<KdTree>> BuildTree(const PointSet& points,
                                            size_t leaf_size) {
  if (points.empty()) {
    return FailedPreconditionError(
        "recovered point set is empty; cannot index it");
  }
  KdTree::Options tree_options;
  tree_options.leaf_size = leaf_size;
  return std::make_unique<KdTree>(points, tree_options);
}

// Writes index generation `gen` + manifest for `points` and opens a journal
// at `floor`. The shared tail of Bootstrap and the CSV rebuild.
StatusOr<RecoveredState> CommitFreshState(const RecoveryOptions& options,
                                          PointSet points, uint64_t gen,
                                          uint64_t floor) {
  std::error_code ec;
  fs::create_directories(options.state_dir, ec);
  if (ec) {
    return NotFoundError("cannot create state directory " +
                         options.state_dir + ": " + ec.message());
  }
  KDV_ASSIGN_OR_RETURN(std::unique_ptr<KdTree> tree,
                       BuildTree(points, options.leaf_size));
  const std::string index_name = IndexFileName(gen);
  KDV_RETURN_IF_ERROR(
      SaveKdTree(*tree, options.state_dir + "/" + index_name));

  Manifest manifest;
  manifest.generation = gen;
  manifest.journal_floor = floor;
  manifest.index_file = index_name;
  KDV_RETURN_IF_ERROR(SaveManifest(ManifestPath(options.state_dir), manifest));

  KDV_ASSIGN_OR_RETURN(
      std::unique_ptr<Journal> journal,
      Journal::Open(WalDir(options.state_dir), floor, options.journal));

  RecoveredState state;
  state.live_points = std::move(points);
  state.tree = std::move(tree);
  state.journal = std::move(journal);
  state.generation = gen;
  state.state_dir = options.state_dir;
  state.leaf_size = options.leaf_size;
  return state;
}

StatusOr<RecoveredState> RebuildFromCsv(const RecoveryOptions& options,
                                        RecoveryReport* report) {
  if (options.csv_fallback.empty()) {
    return DataLossError(
        "persisted state in " + options.state_dir +
        " is unusable and no CSV fallback is configured");
  }
  PointSet points;
  KDV_RETURN_IF_ERROR(LoadPointsCsv(options.csv_fallback,
                                    options.csv_attributes, &points));
  report->source = RecoverySource::kCsvRebuild;
  const uint64_t gen = MaxIndexGeneration(options.state_dir) + 1;
  const uint64_t floor = MaxSegmentSequence(WalDir(options.state_dir)) + 1;
  KDV_ASSIGN_OR_RETURN(RecoveredState state,
                       CommitFreshState(options, std::move(points), gen,
                                        floor));
  report->generation = gen;
  CleanOrphans(options.state_dir, gen, report);
  return state;
}

}  // namespace

const char* RecoverySourceName(RecoverySource source) {
  switch (source) {
    case RecoverySource::kManifest:
      return "manifest";
    case RecoverySource::kScavengedIndex:
      return "scavenged index";
    case RecoverySource::kCsvRebuild:
      return "csv rebuild";
  }
  return "unknown";
}

std::string RecoveryReport::Summary() const {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "recovered gen %llu from %s, replayed %llu records (%llu "
                "points), quarantined %zu file(s)",
                static_cast<unsigned long long>(generation),
                RecoverySourceName(source),
                static_cast<unsigned long long>(journal_stats.records_applied),
                static_cast<unsigned long long>(journal_stats.points_applied),
                quarantined.size());
  std::string summary = buf;
  if (journal_stats.tail_truncated) {
    summary += ", torn journal tail truncated (" +
               std::to_string(journal_stats.torn_bytes_truncated) + " bytes)";
  }
  if (possible_data_loss) summary += ", POSSIBLE DATA LOSS";
  return summary;
}

StatusOr<RecoveredState> RecoveryManager::Bootstrap(
    const RecoveryOptions& options, PointSet points) {
  if (LoadManifest(ManifestPath(options.state_dir)).ok()) {
    return FailedPreconditionError("state directory " + options.state_dir +
                                   " already holds a valid manifest; refusing "
                                   "to clobber it");
  }
  const uint64_t gen = MaxIndexGeneration(options.state_dir) + 1;
  const uint64_t floor = MaxSegmentSequence(WalDir(options.state_dir)) + 1;
  return CommitFreshState(options, std::move(points), gen, floor);
}

StatusOr<RecoveredState> RecoveryManager::Recover(
    const RecoveryOptions& options, RecoveryReport* report) {
  RecoveryReport local;
  RecoveryReport* rep = report != nullptr ? report : &local;
  *rep = RecoveryReport();
  RecoveryRunScope run_scope(rep);

  const std::string manifest_path = ManifestPath(options.state_dir);
  Manifest manifest;
  std::unique_ptr<KdTree> tree;

  StatusOr<Manifest> loaded = LoadManifest(manifest_path);
  if (loaded.ok()) {
    manifest = *std::move(loaded);
    rep->source = RecoverySource::kManifest;

    StatusOr<std::unique_ptr<KdTree>> index =
        LoadKdTree(options.state_dir + "/" + manifest.index_file);
    if (index.ok()) {
      tree = *std::move(index);
    } else if (index.status().code() == StatusCode::kNotFound ||
               index.status().code() == StatusCode::kDataLoss) {
      // The committed index is gone or rotten. Its journal is a delta
      // against exactly that index, so it goes to quarantine with it.
      std::error_code ec;
      if (fs::exists(options.state_dir + "/" + manifest.index_file, ec)) {
        Quarantine(options.state_dir + "/" + manifest.index_file, rep);
      }
      QuarantineJournal(options.state_dir, rep);
      return RebuildFromCsv(options, rep);
    } else {
      return index.status();
    }
  } else if (loaded.status().code() == StatusCode::kNotFound) {
    // Never initialized (or the whole directory is gone): a fresh CSV
    // bootstrap, not data loss.
    return RebuildFromCsv(options, rep);
  } else {
    // Corrupt manifest. Scavenge the newest index that still verifies; the
    // journal floor died with the manifest, so replaying any segment risks
    // applying a batch twice — quarantine them all instead.
    Quarantine(manifest_path, rep);
    rep->possible_data_loss = true;

    std::vector<std::pair<uint64_t, std::string>> candidates =
        ListIndexFiles(options.state_dir);
    for (auto it = candidates.rbegin(); it != candidates.rend(); ++it) {
      StatusOr<std::unique_ptr<KdTree>> index =
          LoadKdTree(options.state_dir + "/" + it->second);
      if (index.ok()) {
        tree = *std::move(index);
        manifest.generation = it->first;
        manifest.index_file = it->second;
        break;
      }
      Quarantine(options.state_dir + "/" + it->second, rep);
    }
    if (tree == nullptr) return RebuildFromCsv(options, rep);

    rep->source = RecoverySource::kScavengedIndex;
    manifest.journal_floor = QuarantineJournal(options.state_dir, rep);
    // Re-commit so the next startup takes the happy path.
    KDV_RETURN_IF_ERROR(SaveManifest(manifest_path, manifest));
  }

  CleanOrphans(options.state_dir, manifest.generation, rep);

  KDV_ASSIGN_OR_RETURN(std::unique_ptr<Journal> journal,
                       Journal::Open(WalDir(options.state_dir),
                                     manifest.journal_floor, options.journal));

  PointSet live = tree->points();
  Status replayed = journal->Replay(
      [&live](JournalOp op, const PointSet& batch) {
        return ApplyBatch(&live, op, batch);
      },
      &rep->journal_stats);
  if (!replayed.ok()) {
    if (replayed.code() != StatusCode::kDataLoss) return replayed;
    // Mid-journal corruption (not a crash artifact). The index itself is
    // good; serve it without the journaled tail rather than die.
    live = tree->points();
    rep->journal_stats = JournalReplayStats();
    journal.reset();
    const uint64_t floor = QuarantineJournal(options.state_dir, rep);
    manifest.journal_floor = floor;
    KDV_RETURN_IF_ERROR(SaveManifest(manifest_path, manifest));
    KDV_ASSIGN_OR_RETURN(journal,
                         Journal::Open(WalDir(options.state_dir), floor,
                                       options.journal));
  }

  if (rep->journal_stats.records_applied > 0) {
    KDV_ASSIGN_OR_RETURN(tree, BuildTree(live, options.leaf_size));
  }
  rep->generation = manifest.generation;

  RecoveredState state;
  state.live_points = std::move(live);
  state.tree = std::move(tree);
  state.journal = std::move(journal);
  state.generation = manifest.generation;
  state.state_dir = options.state_dir;
  state.leaf_size = options.leaf_size;
  return state;
}

Status RecoveryManager::RunCheckpoint(RecoveredState* state) {
  if (state == nullptr || state->journal == nullptr) {
    return InvalidArgumentError("checkpoint requires a recovered state");
  }
  if (state->live_points.empty()) {
    return FailedPreconditionError(
        "live point set is empty; cannot checkpoint an empty index");
  }
  // New appends land in the fresh tail; everything before it is what the
  // live set already reflects, i.e. exactly what the new index will hold.
  KDV_ASSIGN_OR_RETURN(const uint64_t new_floor, state->journal->Rotate());

  KDV_ASSIGN_OR_RETURN(std::unique_ptr<KdTree> tree,
                       BuildTree(state->live_points, state->leaf_size));
  const uint64_t new_gen = state->generation + 1;
  const std::string index_name = IndexFileName(new_gen);
  KDV_RETURN_IF_ERROR(
      SaveKdTree(*tree, state->state_dir + "/" + index_name));

  Manifest manifest;
  manifest.generation = new_gen;
  manifest.journal_floor = new_floor;
  manifest.index_file = index_name;
  // The commit point: before this rename the old {index, floor} is what
  // recovery sees, after it the new one. Nothing in between.
  KDV_RETURN_IF_ERROR(
      SaveManifest(ManifestPath(state->state_dir), manifest));

  state->journal->DropSegmentsBelow(new_floor);
  std::error_code ec;
  fs::remove(state->state_dir + "/" + IndexFileName(state->generation), ec);

  state->generation = new_gen;
  state->tree = std::move(tree);
  return OkStatus();
}

}  // namespace kdv
