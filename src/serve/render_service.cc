#include "serve/render_service.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "obs/metrics.h"
#include "util/mem_budget.h"

namespace kdv {

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

namespace {

// Transition-log cap, mirroring the governor's: observability must not grow
// memory without bound under a pathologically flapping breaker.
constexpr size_t kMaxBreakerTransitions = 1024;

}  // namespace

CircuitBreaker::CircuitBreaker(Options options, const Clock* clock)
    : options_(options), clock_(clock != nullptr ? clock : CurrentClock()) {
  KDV_CHECK(options.failure_threshold >= 1);
  KDV_CHECK(options.cooldown_seconds >= 0.0);
}

double CircuitBreaker::Now() const { return clock_->NowSeconds(); }

const char* CircuitBreaker::StateName(State state) {
  switch (state) {
    case State::kClosed:
      return "closed";
    case State::kOpen:
      return "open";
    case State::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

void CircuitBreaker::RecordTransitionLocked(double now, State from,
                                            State to) {
  transitions_.push_back({now, from, to});
  if (transitions_.size() > kMaxBreakerTransitions) {
    transitions_.erase(transitions_.begin(),
                       transitions_.begin() + (transitions_.size() -
                                               kMaxBreakerTransitions));
  }
}

bool CircuitBreaker::AllowCertified() {
  std::lock_guard<std::mutex> lock(mu_);
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (Now() - opened_at_ >= options_.cooldown_seconds) {
        RecordTransitionLocked(Now(), State::kOpen, State::kHalfOpen);
        state_ = State::kHalfOpen;
        probe_in_flight_ = true;
        return true;
      }
      return false;
    case State::kHalfOpen:
      // One probe at a time; everyone else keeps short-circuiting until the
      // probe reports back.
      if (!probe_in_flight_) {
        probe_in_flight_ = true;
        return true;
      }
      return false;
  }
  return false;
}

void CircuitBreaker::RecordSuccess() {
  std::lock_guard<std::mutex> lock(mu_);
  consecutive_faults_ = 0;
  if (state_ == State::kHalfOpen) {
    RecordTransitionLocked(Now(), State::kHalfOpen, State::kClosed);
    state_ = State::kClosed;
    probe_in_flight_ = false;
  }
}

void CircuitBreaker::RecordFault() {
  std::lock_guard<std::mutex> lock(mu_);
  ++consecutive_faults_;
  if (state_ == State::kHalfOpen) {
    // The probe failed: reopen and restart the cooldown.
    RecordTransitionLocked(Now(), State::kHalfOpen, State::kOpen);
    state_ = State::kOpen;
    opened_at_ = Now();
    probe_in_flight_ = false;
    ++trips_;
  } else if (state_ == State::kClosed &&
             consecutive_faults_ >= options_.failure_threshold) {
    RecordTransitionLocked(Now(), State::kClosed, State::kOpen);
    state_ = State::kOpen;
    opened_at_ = Now();
    ++trips_;
  }
  // Already open: faults from requests admitted before the trip don't
  // extend the cooldown.
}

CircuitBreaker::State CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mu_);
  return state_;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trips_;
}

std::vector<CircuitBreaker::Transition> CircuitBreaker::transitions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

bool IsRetryableRenderFault(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:
      return true;  // transient certified-path fault (e.g. injected)
    default:
      // Deliberately exhaustive by exclusion: kResourceExhausted is shed
      // work (retrying amplifies overload), kCancelled/kDeadlineExceeded
      // mean someone already gave up on this request, kUnavailable is the
      // breaker doing its job, and data/argument errors won't get better.
      return false;
  }
}

// ---------------------------------------------------------------------------
// RenderService
// ---------------------------------------------------------------------------

// One admitted request. The timer starts at admission, so queue time counts
// against the deadline and shows up in queue_seconds.
struct RenderService::Job {
  const PixelGrid* grid = nullptr;
  ServeRequestOptions request;
  std::promise<ServeOutcome> promise;
  std::unique_ptr<Deadline> deadline;  // null: no budget
  bool pre_expired = false;            // budget was 0 at admission
  Timer timer;
  // Per-request trace span, filled as the job moves through the stack and
  // published to the registry's recent-trace ring at completion.
  obs::TraceSpan span;
  // Admission→completion memory accounting for the governor's pressure
  // signal: the queued-job bookkeeping and the output frame this request
  // will materialize.
  ScopedMemCharge mem_charge;
};

RenderService::RenderService(const KdeEvaluator* evaluator, Options options)
    : RenderService(std::move(options)) {
  SwapEvaluator(evaluator);
}

namespace {

// The governor normalizes its in-flight signal by the service's actual
// admission cap unless the caller pinned a capacity explicitly, and
// inherits the service clock unless it carries its own.
OverloadGovernor::Options ResolveGovernorOptions(
    OverloadGovernor::Options governor, size_t max_in_flight,
    Clock* clock) {
  if (governor.in_flight_capacity == 0) {
    governor.in_flight_capacity = max_in_flight;
  }
  if (governor.clock == nullptr) {
    governor.clock = clock;
  }
  return governor;
}

RenderWatchdog::Options ResolveWatchdogOptions(RenderWatchdog::Options wd,
                                               Clock* clock) {
  if (wd.clock == nullptr) {
    wd.clock = clock;
  }
  return wd;
}

// Serve-level observability: admission/outcome counters and end-to-end
// latency histograms mirrored into the process-wide registry, so the
// exporters see the service without reaching into ServiceStats. Handles
// resolve once per process; every update is a relaxed atomic.
struct ServeObs {
  obs::Counter* submitted;
  obs::Counter* admitted;
  obs::Counter* shed;
  obs::Counter* completed;
  obs::Counter* served_ok;
  obs::Counter* degraded;
  obs::Counter* retries;
  obs::Counter* faults;
  obs::Counter* unavailable;
  obs::Histogram* queue_wait_seconds;
  obs::Histogram* request_seconds;
  obs::Histogram* backoff_seconds;
  ServeObs() {
    auto& r = obs::MetricsRegistry::Global();
    submitted = r.GetCounter("kdv_serve_submitted_total");
    admitted = r.GetCounter("kdv_serve_admitted_total");
    shed = r.GetCounter("kdv_serve_shed_total");
    completed = r.GetCounter("kdv_serve_completed_total");
    served_ok = r.GetCounter("kdv_serve_ok_total");
    degraded = r.GetCounter("kdv_serve_degraded_total");
    retries = r.GetCounter("kdv_serve_retries_total");
    faults = r.GetCounter("kdv_serve_faults_total");
    unavailable = r.GetCounter("kdv_serve_unavailable_total");
    queue_wait_seconds = r.GetHistogram("kdv_serve_queue_wait_seconds");
    request_seconds = r.GetHistogram("kdv_serve_request_seconds");
    backoff_seconds = r.GetHistogram("kdv_serve_backoff_seconds");
  }
  static ServeObs& Get() {
    static ServeObs& o = *new ServeObs();
    return o;
  }
};

}  // namespace

RenderService::RenderService(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : CurrentClock()),
      max_in_flight_(options.max_in_flight > 0
                         ? options.max_in_flight
                         : options.max_queue +
                               static_cast<size_t>(
                                   std::max(1, options.num_threads))),
      breaker_(options.breaker, clock_),
      governor_(
          ResolveGovernorOptions(options.governor, max_in_flight_, clock_)),
      watchdog_(ResolveWatchdogOptions(options.watchdog, clock_),
                [this](const StallReport& report) {
                  // Repeated stalls must shed the certified path the same
                  // way repeated faults do; one stall is one breaker fault.
                  (void)report;
                  counters_.faults.fetch_add(1, std::memory_order_relaxed);
                  ServeObs::Get().faults->Increment();
                  breaker_.RecordFault();
                }),
      backoff_(options.backoff, options.backoff_seed) {
  KDV_CHECK(options.max_attempts >= 1);
  if (options.executor != nullptr) {
    pool_ = options.executor;
  } else {
    owned_pool_ =
        std::make_unique<ThreadPool>(ThreadPool::Options{
            options.num_threads, options.max_queue});
    pool_ = owned_pool_.get();
  }
  if (options.tile_executor != nullptr) {
    tile_pool_ = options.tile_executor;
  } else {
    const int frame_threads =
        ResolveRenderThreads(options.intra_frame_threads);
    if (frame_threads > 1) {
      // One shared helper pool for all in-flight frames. Each frame submits
      // at most frame_threads - 1 helper tasks; size the queue for every
      // request worker doing so at once (rejected helpers are shed to the
      // worker, so this is a throughput knob, not a correctness one).
      ThreadPool::Options popts;
      popts.num_threads = frame_threads - 1;
      popts.max_queue =
          static_cast<size_t>(std::max(1, options.num_threads)) *
          static_cast<size_t>(frame_threads);
      owned_tile_pool_ = std::make_unique<ThreadPool>(popts);
      tile_pool_ = owned_tile_pool_.get();
    }
  }
}

RenderService::~RenderService() { Stop(); }

void RenderService::Stop() {
  // Wake any worker parked in a retry-backoff sleep before draining, so
  // Stop() latency is bounded by real render work, not by pending backoff
  // delays. The waker is one-shot; Stop is terminal, so that is enough.
  stop_waker_.Set();
  pool_->Stop();
}

void RenderService::SwapEvaluator(const KdeEvaluator* evaluator) {
  KDV_CHECK(evaluator != nullptr);
  const uint64_t swap_number =
      swaps_.fetch_add(1, std::memory_order_relaxed) + 1;
  auto epoch = std::make_shared<const Epoch>(evaluator, swap_number);
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    // The old epoch's refcount now belongs entirely to in-flight requests;
    // the last of them to finish destroys it.
    epoch_ = std::move(epoch);
  }
  ServiceHealth expected = ServiceHealth::kStarting;
  if (!health_.compare_exchange_strong(expected, ServiceHealth::kServing)) {
    expected = ServiceHealth::kRecovering;
    health_.compare_exchange_strong(expected, ServiceHealth::kServing);
  }
}

std::shared_ptr<const RenderService::Epoch> RenderService::CurrentEpoch()
    const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epoch_;
}

ServiceHealth RenderService::Health() const {
  const ServiceHealth recorded = health_.load(std::memory_order_acquire);
  if (recorded == ServiceHealth::kServing) {
    if (breaker_.state() == CircuitBreaker::State::kOpen) {
      return ServiceHealth::kDegraded;
    }
    // An active brownout is a degraded service by definition: requests are
    // being served below the quality they asked for.
    if (options_.governor.enabled &&
        governor_.stats().level != OverloadGovernor::Level::kNormal) {
      return ServiceHealth::kDegraded;
    }
  }
  return recorded;
}

const KdeEvaluator* RenderService::CurrentEvaluator() const {
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  return epoch != nullptr ? epoch->evaluator : nullptr;
}

void RenderService::SetHealth(ServiceHealth health) {
  health_.store(health, std::memory_order_release);
}

void RenderService::SleepMs(double ms) {
  if (ms <= 0.0) return;
  clock_->WaitFor(ms / 1000.0, &stop_waker_);
}

StatusOr<std::future<ServeOutcome>> RenderService::Submit(
    const PixelGrid& grid, const ServeRequestOptions& request) {
  counters_.submitted.fetch_add(1, std::memory_order_relaxed);
  ServeObs::Get().submitted->Increment();

  // Nothing published yet (still starting/recovering): there is no
  // evaluator any worker could render against.
  if (CurrentEpoch() == nullptr) {
    return UnavailableError("no evaluator published (service is " +
                            std::string(ServiceHealthName(Health())) + ")");
  }

  // In-flight cap first: it bounds admitted-but-unfinished work (queued +
  // executing), independent of the pool's own queue bound.
  if (in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1 >
      max_in_flight_) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    counters_.shed.fetch_add(1, std::memory_order_relaxed);
    ServeObs::Get().shed->Increment();
    return ResourceExhaustedError(
        "render service at max in-flight requests (" +
        std::to_string(max_in_flight_) + ")");
  }

  // Brownout ceiling: below it the governor degrades instead of rejecting
  // (at execution time); at or above it even a coarse render is load the
  // service cannot spare.
  if (options_.governor.enabled) {
    governor_.RecordInFlight(in_flight_.load(std::memory_order_relaxed));
    const OverloadGovernor::Decision decision = governor_.Assess();
    if (decision.shed) {
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      counters_.brownout_shed.fetch_add(1, std::memory_order_relaxed);
      ServeObs::Get().shed->Increment();
      return ResourceExhaustedError(
          "render service past overload ceiling (pressure " +
          std::to_string(decision.pressure) + ")");
    }
  }

  auto job = std::make_shared<Job>();
  job->grid = &grid;
  job->request = request;
  job->timer = Timer(clock_);
  job->span.request_id =
      next_trace_id_.fetch_add(1, std::memory_order_relaxed) + 1;
  job->mem_charge = ScopedMemCharge(
      &MemBudget::Global(), MemSource::kFrameBuffers,
      sizeof(Job) + static_cast<uint64_t>(grid.width()) *
                        static_cast<uint64_t>(grid.height()) *
                        sizeof(double));
  if (request.budget_seconds == 0.0) {
    job->pre_expired = true;
  } else if (request.budget_seconds > 0.0) {
    job->deadline = std::make_unique<Deadline>(request.budget_seconds, clock_);
  }
  std::future<ServeOutcome> future = job->promise.get_future();

  Status admitted = pool_->TrySubmit([this, job] { Execute(job); });
  if (!admitted.ok()) {
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (admitted.code() == StatusCode::kResourceExhausted) {
      counters_.shed.fetch_add(1, std::memory_order_relaxed);
      ServeObs::Get().shed->Increment();
    }
    return admitted;
  }
  counters_.admitted.fetch_add(1, std::memory_order_relaxed);
  ServeObs::Get().admitted->Increment();
  return future;
}

void RenderService::Execute(const std::shared_ptr<Job>& job) {
  ServeOutcome outcome;
  outcome.queue_seconds = job->timer.ElapsedSeconds();
  job->span.AddStage(obs::TraceStage::kQueueWait, outcome.queue_seconds);
  // Preflight time (epoch snapshot, governor assessment, queue-expiry
  // checks) is attributed to the admission stage at each exit below.
  Timer admission_timer(clock_);

  const PixelGrid& grid = *job->grid;
  const ServeRequestOptions& request = job->request;

  // One epoch per request, snapshotted at execution start: every attempt
  // (including retries and coarse fallbacks) renders against the same
  // evaluator even if SwapEvaluator publishes a successor mid-request.
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  const ResilientRenderer& renderer = epoch->renderer;
  outcome.epoch = epoch->id;

  ResilientRenderOptions ropts;
  ropts.eps = request.eps;
  ropts.degrade = request.degrade;
  ropts.cancel = request.cancel;
  ropts.coarse = request.coarse;
  ropts.parallel.num_threads = options_.intra_frame_threads;
  ropts.parallel.tile_rows = options_.tile_rows;
  // Epoch-keyed frontier reuse: the epoch's renderer owns the cache, and the
  // epoch id in the key makes stale reuse across hot-swaps structurally
  // impossible.
  ropts.parallel.tile_shared = options_.tile_shared;
  ropts.parallel.cache_epoch = epoch->id;
  ropts.tile_pool = tile_pool_;
  ropts.trace = &job->span;

  // Brownout: fold the observed queue wait into the pressure signal, then
  // serve at the governor's level. Fail-fast requests are exempt — the
  // client asked for certified-or-error, and silently lowering their tier
  // would break that contract (they still pay the shed ceiling at Submit).
  if (options_.governor.enabled) {
    governor_.RecordQueueWait(outcome.queue_seconds);
    governor_.RecordInFlight(in_flight_.load(std::memory_order_relaxed));
    const OverloadGovernor::Decision decision = governor_.Assess();
    if (request.degrade &&
        decision.level != OverloadGovernor::Level::kNormal) {
      ropts.max_tier = decision.level == OverloadGovernor::Level::kCoarse
                           ? QualityTier::kCoarse
                           : QualityTier::kProgressive;
      ropts.eps = request.eps * decision.eps_multiplier;
      counters_.brownout_applied.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Cancelled while queued: never touch the render path.
  if (request.cancel != nullptr && request.cancel->cancelled()) {
    job->span.AddStage(obs::TraceStage::kAdmission,
                       admission_timer.ElapsedSeconds());
    outcome.render.frame = DensityFrame(grid.width(), grid.height());
    outcome.render.cancelled = true;
    outcome.render.status = CancelledError("request cancelled while queued");
    outcome.status = outcome.render.status;
    FinishOutcome(job, std::move(outcome));
    return;
  }

  // Budget spent in the queue: the certified path is no longer worth
  // starting. Serve the coarse tier or fail fast, per request policy.
  const bool has_deadline = job->pre_expired || job->deadline != nullptr;
  double remaining =
      job->pre_expired ? 0.0
                       : (job->deadline ? job->deadline->RemainingSeconds()
                                        : -1.0);
  if (has_deadline && remaining <= 0.0) {
    job->span.AddStage(obs::TraceStage::kAdmission,
                       admission_timer.ElapsedSeconds());
    if (request.degrade) {
      outcome.render = renderer.RenderCoarseOnly(grid, ropts);
    } else {
      outcome.render.frame = DensityFrame(grid.width(), grid.height());
      outcome.render.status =
          DeadlineExceededError("render budget exhausted while queued");
    }
    outcome.render.deadline_expired = true;
    outcome.status = outcome.render.status;
    FinishOutcome(job, std::move(outcome));
    return;
  }

  job->span.AddStage(obs::TraceStage::kAdmission,
                     admission_timer.ElapsedSeconds());

  for (int attempt = 1; attempt <= options_.max_attempts; ++attempt) {
    if (!breaker_.AllowCertified()) {
      // Open breaker: serve the coarse tier directly, or reject with
      // kUnavailable in fail-fast mode. Either way this request is counted
      // as short-circuited.
      outcome.breaker_open = true;
      counters_.unavailable.fetch_add(1, std::memory_order_relaxed);
      ServeObs::Get().unavailable->Increment();
      if (request.degrade) {
        outcome.render = renderer.RenderCoarseOnly(grid, ropts);
      } else {
        outcome.render.frame = DensityFrame(grid.width(), grid.height());
        outcome.render.status = UnavailableError(
            "certified render path unavailable (circuit breaker open)");
      }
      outcome.status = outcome.render.status;
      FinishOutcome(job, std::move(outcome));
      return;
    }

    outcome.attempts = attempt;
    // Clamp at 0: a deadline that expired since the queue check must read
    // as "already expired" (== 0), not "no deadline" (< 0).
    ropts.budget_seconds =
        job->deadline ? std::max(0.0, job->deadline->RemainingSeconds())
                      : -1.0;

    // Watchdog: register this attempt and thread the kill token + heartbeat
    // through the render. The handle is per-attempt so a retry restarts the
    // overrun clock.
    std::shared_ptr<WatchEntry> watch;
    if (options_.watchdog.enabled) {
      watch = watchdog_.Watch(
          next_request_id_.fetch_add(1, std::memory_order_relaxed) + 1,
          ropts.budget_seconds);
      ropts.force_cancel = &watch->kill;
      ropts.heartbeat = &watch->heartbeat;
    }

    Timer attempt_timer(clock_);
    RenderOutcome render = renderer.Render(grid, ropts);
    job->span.AddStage(obs::TraceStage::kTierAttempt,
                       attempt_timer.ElapsedSeconds());

    bool watchdog_killed = false;
    if (watch != nullptr) {
      watchdog_.Unwatch(watch);
      // The entry dies with this iteration; ropts outlives it. Drop the
      // borrowed kill token and heartbeat now, or a later attempt that
      // skips Watch() — the breaker-open coarse fallback — would render
      // against freed memory.
      ropts.force_cancel = nullptr;
      ropts.heartbeat = nullptr;
      // Attribute the cancellation to the watchdog only if its kill is what
      // actually stopped the render (the client's own token wins, and a
      // render that raced the kill to completion is served normally).
      watchdog_killed =
          watch->WasKilled() && render.cancelled &&
          !(request.cancel != nullptr && request.cancel->cancelled());
      if (watchdog_killed) {
        counters_.watchdog_kills.fetch_add(1, std::memory_order_relaxed);
        render.cancelled = false;
        render.deadline_expired = true;
        render.status = DeadlineExceededError(
            "render force-cancelled by watchdog (wedged past its deadline)");
      }
    }

    // Breaker accounting: a retryable fault (kInternal — real or injected)
    // counts against the certified path; anything else — including
    // degraded-by-deadline and cancelled renders — is evidence the path
    // itself is healthy. A watchdog kill records nothing here: the stall
    // callback already charged the breaker, and the killed render must not
    // immediately erase that fault with a "success".
    const bool fault = IsRetryableRenderFault(render.status.code());
    if (fault) {
      counters_.faults.fetch_add(1, std::memory_order_relaxed);
      ServeObs::Get().faults->Increment();
      breaker_.RecordFault();
    } else if (!watchdog_killed) {
      breaker_.RecordSuccess();
    }

    bool retry = fault && attempt < options_.max_attempts &&
                 !(request.cancel != nullptr && request.cancel->cancelled());
    if (retry && job->deadline != nullptr &&
        job->deadline->RemainingSeconds() <= 0.0) {
      retry = false;
    }
    if (!retry) {
      outcome.render = std::move(render);
      outcome.status = outcome.render.status;
      FinishOutcome(job, std::move(outcome));
      return;
    }

    counters_.retries.fetch_add(1, std::memory_order_relaxed);
    ServeObs::Get().retries->Increment();
    double delay_ms;
    {
      std::lock_guard<std::mutex> lock(backoff_mu_);
      delay_ms = backoff_.NextDelayMs();
    }
    if (job->deadline != nullptr) {
      delay_ms =
          std::min(delay_ms, job->deadline->RemainingSeconds() * 1000.0);
    }
    Timer backoff_timer(clock_);
    SleepMs(delay_ms);
    const double backoff_s = backoff_timer.ElapsedSeconds();
    job->span.AddStage(obs::TraceStage::kBackoff, backoff_s);
    ServeObs::Get().backoff_seconds->Record(backoff_s);
  }
}

void RenderService::FinishOutcome(const std::shared_ptr<Job>& job,
                                  ServeOutcome outcome) {
  outcome.total_seconds = job->timer.ElapsedSeconds();

  // Settle the request's trace span and publish it to the recent-trace
  // ring, then mirror the outcome counters into the registry.
  obs::TraceSpan& span = job->span;
  span.epoch = outcome.epoch;
  span.has_epoch = outcome.epoch != 0;
  span.tier = QualityTierName(outcome.render.tier);
  span.attempts = outcome.attempts;
  span.ok = outcome.status.ok();
  span.total_seconds = outcome.total_seconds;
  ServeObs& so = ServeObs::Get();
  so.completed->Increment();
  so.queue_wait_seconds->Record(outcome.queue_seconds);
  so.request_seconds->Record(outcome.total_seconds);
  if (outcome.status.ok()) {
    so.served_ok->Increment();
    if (outcome.render.tier != QualityTier::kCertified) {
      so.degraded->Increment();
    }
  }
  obs::MetricsRegistry::Global().RecordTrace(span);

  counters_.completed.fetch_add(1, std::memory_order_relaxed);
  if (outcome.render.stats.frontier_cache_hits > 0) {
    counters_.frontier_cache_hits.fetch_add(
        outcome.render.stats.frontier_cache_hits, std::memory_order_relaxed);
  }
  if (outcome.render.deadline_expired) {
    counters_.deadline_expired.fetch_add(1, std::memory_order_relaxed);
  }
  if (outcome.status.ok()) {
    counters_.served_ok.fetch_add(1, std::memory_order_relaxed);
    if (outcome.render.tier != QualityTier::kCertified) {
      counters_.degraded.fetch_add(1, std::memory_order_relaxed);
    }
  } else if (outcome.status.code() == StatusCode::kCancelled) {
    counters_.cancelled.fetch_add(1, std::memory_order_relaxed);
  }
  switch (outcome.render.tier) {
    case QualityTier::kCertified:
      counters_.tier_certified.fetch_add(1, std::memory_order_relaxed);
      break;
    case QualityTier::kProgressive:
      counters_.tier_progressive.fetch_add(1, std::memory_order_relaxed);
      break;
    case QualityTier::kCoarse:
      counters_.tier_coarse.fetch_add(1, std::memory_order_relaxed);
      break;
    case QualityTier::kFlat:
      counters_.tier_flat.fetch_add(1, std::memory_order_relaxed);
      break;
  }

  job->promise.set_value(std::move(outcome));
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

ServiceStats RenderService::stats() const {
  ServiceStats s;
  s.submitted = counters_.submitted.load(std::memory_order_relaxed);
  s.admitted = counters_.admitted.load(std::memory_order_relaxed);
  s.shed = counters_.shed.load(std::memory_order_relaxed);
  s.completed = counters_.completed.load(std::memory_order_relaxed);
  s.served_ok = counters_.served_ok.load(std::memory_order_relaxed);
  s.cancelled = counters_.cancelled.load(std::memory_order_relaxed);
  s.deadline_expired =
      counters_.deadline_expired.load(std::memory_order_relaxed);
  s.degraded = counters_.degraded.load(std::memory_order_relaxed);
  s.retries = counters_.retries.load(std::memory_order_relaxed);
  s.faults = counters_.faults.load(std::memory_order_relaxed);
  s.breaker_trips = breaker_.trips();
  s.unavailable = counters_.unavailable.load(std::memory_order_relaxed);
  s.tier_certified = counters_.tier_certified.load(std::memory_order_relaxed);
  s.tier_progressive =
      counters_.tier_progressive.load(std::memory_order_relaxed);
  s.tier_coarse = counters_.tier_coarse.load(std::memory_order_relaxed);
  s.tier_flat = counters_.tier_flat.load(std::memory_order_relaxed);
  s.swaps = swaps_.load(std::memory_order_relaxed);
  const std::shared_ptr<const Epoch> epoch = CurrentEpoch();
  s.epoch_published = epoch != nullptr;
  s.epoch = epoch != nullptr ? epoch->id : 0;
  s.brownout_applied =
      counters_.brownout_applied.load(std::memory_order_relaxed);
  s.brownout_shed = counters_.brownout_shed.load(std::memory_order_relaxed);
  s.watchdog_kills =
      counters_.watchdog_kills.load(std::memory_order_relaxed);
  s.frontier_cache_hits =
      counters_.frontier_cache_hits.load(std::memory_order_relaxed);
  const OverloadGovernor::Stats gov = governor_.stats();
  s.governor_level = static_cast<int>(gov.level);
  s.governor_max_level = static_cast<int>(gov.max_level);
  s.governor_pressure = gov.pressure;
  return s;
}

}  // namespace kdv
