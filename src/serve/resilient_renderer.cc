#include "serve/resilient_renderer.h"

#include <algorithm>

#include "obs/metrics.h"
#include "progressive/progressive.h"
#include "util/check.h"
#include "util/failpoint.h"
#include "util/mem_budget.h"
#include "util/timer.h"

namespace kdv {

namespace {

// Per-render observability: stage histograms and delivered-tier counters,
// recorded once per render (never inside pixel loops).
struct RenderObs {
  obs::Histogram* tile_pass_seconds;
  obs::Histogram* refinement_seconds;
  obs::Histogram* scrub_seconds;
  obs::Histogram* coarse_seconds;
  obs::Counter* pixels_scrubbed;
  obs::Counter* tiers[4];
  RenderObs() {
    auto& r = obs::MetricsRegistry::Global();
    tile_pass_seconds = r.GetHistogram("kdv_render_tile_pass_seconds");
    refinement_seconds = r.GetHistogram("kdv_render_refinement_seconds");
    scrub_seconds = r.GetHistogram("kdv_render_scrub_seconds");
    coarse_seconds = r.GetHistogram("kdv_render_coarse_seconds");
    pixels_scrubbed = r.GetCounter("kdv_render_pixels_scrubbed_total");
    tiers[0] = r.GetCounter("kdv_render_tier_certified_total");
    tiers[1] = r.GetCounter("kdv_render_tier_progressive_total");
    tiers[2] = r.GetCounter("kdv_render_tier_coarse_total");
    tiers[3] = r.GetCounter("kdv_render_tier_flat_total");
  }
  static RenderObs& Get() {
    static RenderObs& o = *new RenderObs();
    return o;
  }
};

// Records the first non-OK status seen; later faults don't overwrite it.
void RecordFault(RenderOutcome* outcome, const Status& status) {
  if (outcome->status.ok()) outcome->status = status;
}

// Last line of defense before the frame ships: scrub non-finite pixels and
// settle the delivered-tier accounting. Every Render* exit funnels through
// here, so this is also where the render-level metrics are recorded.
void Finalize(const ResilientRenderOptions& opts, RenderOutcome* outcome) {
  Timer scrub_timer;
  outcome->pixels_scrubbed = ScrubNonFinite(&outcome->frame);
  outcome->numeric_faults += outcome->pixels_scrubbed;
  const double scrub_seconds = scrub_timer.ElapsedSeconds();
  if (opts.trace != nullptr) {
    opts.trace->AddStage(obs::TraceStage::kScrub, scrub_seconds);
  }
  RenderObs& o = RenderObs::Get();
  o.scrub_seconds->Record(scrub_seconds);
  if (outcome->pixels_scrubbed > 0) {
    o.pixels_scrubbed->Increment(outcome->pixels_scrubbed);
  }
  o.tiers[static_cast<int>(outcome->tier)]->Increment();
}

// Either kill switch (client's or watchdog's) has fired.
bool Cancelled(const ResilientRenderOptions& opts) {
  if (opts.cancel != nullptr && opts.cancel->cancelled()) return true;
  return opts.force_cancel != nullptr && opts.force_cancel->cancelled();
}

// A brownout cap below the certified tier strips the certificate: the frame
// is still served, but must not claim an ε guarantee it was not allowed to
// earn.
void ClampTier(const ResilientRenderOptions& opts, RenderOutcome* outcome) {
  if (opts.max_tier == QualityTier::kProgressive &&
      outcome->tier == QualityTier::kCertified) {
    outcome->tier = QualityTier::kProgressive;
    outcome->certified_eps = -1.0;
  }
}

}  // namespace

const char* QualityTierName(QualityTier tier) {
  switch (tier) {
    case QualityTier::kCertified:
      return "certified";
    case QualityTier::kProgressive:
      return "progressive";
    case QualityTier::kCoarse:
      return "coarse";
    case QualityTier::kFlat:
      return "flat";
  }
  return "unknown";
}

ResilientRenderer::ResilientRenderer(const KdeEvaluator* evaluator)
    : evaluator_(evaluator) {
  KDV_CHECK(evaluator != nullptr);
}

std::shared_ptr<const GridKde> ResilientRenderer::CoarseKde(
    const Rect& domain, const GridKde::Options& opts) const {
  auto same_rect = [](const Rect& a, const Rect& b) {
    if (a.dim() != b.dim()) return false;
    for (int i = 0; i < a.dim(); ++i) {
      if (a.lo(i) != b.lo(i) || a.hi(i) != b.hi(i)) return false;
    }
    return true;
  };
  std::lock_guard<std::mutex> lock(coarse_mu_);
  if (coarse_cache_ == nullptr || !same_rect(coarse_domain_, domain) ||
      coarse_opts_.grid_size != opts.grid_size ||
      coarse_opts_.truncation != opts.truncation ||
      coarse_opts_.precompute != opts.precompute) {
    coarse_cache_ = std::make_shared<const GridKde>(
        evaluator_->tree().points(), evaluator_->params(), domain, opts);
    coarse_domain_ = domain;
    coarse_opts_ = opts;
  }
  return coarse_cache_;
}

void ResilientRenderer::RenderCoarse(const PixelGrid& grid,
                                     const ResilientRenderOptions& opts,
                                     RenderOutcome* outcome) const {
  obs::StageTimer coarse_stage(opts.trace, obs::TraceStage::kCoarse);
  Timer coarse_timer;
  Status injected = KDV_FAILPOINT_STATUS("serve.coarse");
  if (!injected.ok()) {
    RecordFault(outcome, injected);
    return;  // flat frame stands
  }
  // GridKde bins on a 2-d grid; higher-dimensional data has no coarse path.
  if (evaluator_->tree().dim() != 2) return;
  // The serve tier renders the same coarse surface many times per epoch
  // (brownouts, degradations, scrubber baselines); precompute makes every
  // render after the first cache fill O(pixels) instead of O(data). The
  // table build costs grid^2 cell evaluations vs pixels per direct frame
  // (both O(occupied) per evaluation), so it pays for itself after
  // ~grid^2/pixels frames — enabled only when that break-even is a handful
  // of frames, so small frames against a fine grid never stall a brownout
  // burst behind a table build they would not amortize.
  GridKde::Options coarse_opts = opts.coarse;
  const long pixels = static_cast<long>(grid.width()) * grid.height();
  const long cells = static_cast<long>(coarse_opts.grid_size) *
                     static_cast<long>(coarse_opts.grid_size);
  coarse_opts.precompute = pixels * 8 >= cells;
  std::shared_ptr<const GridKde> approx =
      CoarseKde(grid.domain(), coarse_opts);
  outcome->frame = approx->RenderFrame(grid);
  outcome->tier = QualityTier::kCoarse;
  RenderObs::Get().coarse_seconds->Record(coarse_timer.ElapsedSeconds());
}

RenderOutcome ResilientRenderer::RenderCoarseOnly(
    const PixelGrid& grid, const ResilientRenderOptions& opts) const {
  RenderOutcome outcome;
  outcome.frame = DensityFrame(grid.width(), grid.height());
  if (Cancelled(opts)) {
    outcome.cancelled = true;
    RecordFault(&outcome, CancelledError("render cancelled before start"));
    Finalize(opts, &outcome);
    return outcome;
  }
  RenderCoarse(grid, opts, &outcome);
  Finalize(opts, &outcome);
  return outcome;
}

RenderOutcome ResilientRenderer::Render(
    const PixelGrid& grid, const ResilientRenderOptions& opts) const {
  // Browned out below the refinement tiers: the coarse path is the ladder.
  if (opts.max_tier == QualityTier::kCoarse ||
      opts.max_tier == QualityTier::kFlat) {
    return RenderCoarseOnly(grid, opts);
  }

  RenderOutcome outcome;
  outcome.frame = DensityFrame(grid.width(), grid.height());

  if (Cancelled(opts)) {
    outcome.cancelled = true;
    RecordFault(&outcome, CancelledError("render cancelled before start"));
    Finalize(opts, &outcome);
    return outcome;
  }

  Status injected = KDV_FAILPOINT_STATUS("serve.render");
  if (!injected.ok()) {
    RecordFault(&outcome, injected);
    if (opts.degrade) RenderCoarse(grid, opts, &outcome);
    Finalize(opts, &outcome);
    return outcome;
  }

  // A zero budget is treated as already expired: skip the certified path.
  const bool pre_expired = opts.budget_seconds == 0.0;
  if (pre_expired) {
    outcome.deadline_expired = true;
    if (!opts.degrade) {
      RecordFault(&outcome,
                  DeadlineExceededError("render budget exhausted (0s)"));
      Finalize(opts, &outcome);
      return outcome;
    }
    RenderCoarse(grid, opts, &outcome);
    Finalize(opts, &outcome);
    return outcome;
  }

  // Certified path: progressive quad-tree refinement under the deadline.
  Deadline deadline(opts.budget_seconds > 0.0 ? opts.budget_seconds : 0.0);
  QueryControl control;
  if (opts.budget_seconds > 0.0) control.deadline = &deadline;
  control.cancel = opts.cancel;
  control.force_cancel = opts.force_cancel;
  control.heartbeat = opts.heartbeat;

  // Tiled certified attempt: a tile-parallel εKDV frame on the same
  // deadline. A clean completion is a certificate; anything cut short falls
  // through to the serial progressive ladder below (sharing the deadline, so
  // total budget is still honored). Taken when there is genuine fan-out
  // (a pool and >1 threads) OR when tile-shared refinement is on — the
  // shared region pass is a work reduction, not a parallelism play, so it
  // pays at one thread too (the renderer runs bands inline on a null pool).
  // Skipped under a progressive brownout cap: the attempt exists to win a
  // certificate this render may not claim, and skipping it keeps the shared
  // tile pool free for full-tier requests.
  BatchStats parallel_stats;
  const bool tried_parallel =
      opts.max_tier == QualityTier::kCertified &&
      (opts.parallel.tile_shared ||
       (opts.tile_pool != nullptr &&
        ResolveRenderThreads(opts.parallel.num_threads) > 1));
  if (tried_parallel) {
    // The tiled attempt materializes a second full frame alongside the
    // outcome's; charge it for as long as both are alive.
    ScopedMemCharge pframe_charge(
        &MemBudget::Global(), MemSource::kFrameBuffers,
        static_cast<uint64_t>(grid.width()) *
            static_cast<uint64_t>(grid.height()) * sizeof(double));
    RenderOptions parallel_opts = opts.parallel;
    if (parallel_opts.tile_shared && parallel_opts.frontier_cache == nullptr) {
      parallel_opts.frontier_cache = &frontier_cache_;
    }
    Timer attempt_timer;
    DensityFrame pframe =
        RenderEpsFrameParallel(*evaluator_, grid, opts.eps, parallel_opts,
                               opts.tile_pool, control, &parallel_stats);
    // Split the attempt between the shared region passes (tile_seconds, CPU
    // time summed by the tile workers) and everything else, which is the
    // per-pixel refinement work.
    const double attempt_seconds = attempt_timer.ElapsedSeconds();
    const double refine_seconds =
        std::max(0.0, attempt_seconds - parallel_stats.tile_seconds);
    if (opts.trace != nullptr) {
      opts.trace->AddStage(obs::TraceStage::kTilePass,
                           parallel_stats.tile_seconds);
      opts.trace->AddStage(obs::TraceStage::kRefinement, refine_seconds);
    }
    RenderObs::Get().tile_pass_seconds->Record(parallel_stats.tile_seconds);
    RenderObs::Get().refinement_seconds->Record(refine_seconds);
    outcome.numeric_faults += parallel_stats.numeric_faults;
    outcome.deadline_expired |= parallel_stats.deadline_expired;
    outcome.cancelled |= parallel_stats.cancelled;

    if (parallel_stats.cancelled) {
      outcome.stats = parallel_stats;
      outcome.frame = std::move(pframe);
      outcome.tier = parallel_stats.queries > 0 ? QualityTier::kProgressive
                                                : QualityTier::kFlat;
      RecordFault(&outcome, CancelledError("render cancelled"));
      Finalize(opts, &outcome);
      return outcome;
    }
    if (!parallel_stats.status.ok()) {
      // Internal/injected fault in the parallel certified path: same
      // degradation (and breaker/retry visibility) as a serial-path fault.
      outcome.stats = parallel_stats;
      RecordFault(&outcome, parallel_stats.status);
      if (opts.degrade) RenderCoarse(grid, opts, &outcome);
      Finalize(opts, &outcome);
      return outcome;
    }
    if (parallel_stats.completed) {
      outcome.stats = parallel_stats;
      outcome.frame = std::move(pframe);
      if (parallel_stats.numeric_faults == 0) {
        outcome.tier = QualityTier::kCertified;
        outcome.certified_eps = opts.eps;
      } else {
        // Fully painted but clamped somewhere: usable, no certificate.
        outcome.tier = QualityTier::kProgressive;
      }
      Finalize(opts, &outcome);
      return outcome;
    }
    // Deadline fired mid-frame: the tiled frame has unclaimed holes; let the
    // progressive ladder paint a complete (coarser) one on what remains.
  }

  Timer prog_timer;
  ProgressiveResult prog = RenderProgressive(
      *evaluator_, grid, opts.eps, control,
      QuadTreeSchedule(grid.width(), grid.height()));
  const double prog_seconds = prog_timer.ElapsedSeconds();
  if (opts.trace != nullptr) {
    opts.trace->AddStage(obs::TraceStage::kRefinement, prog_seconds);
  }
  RenderObs::Get().refinement_seconds->Record(prog_seconds);
  outcome.stats = prog.stats;
  if (tried_parallel) {
    // Work spent in the abandoned parallel attempt still counts.
    outcome.stats.queries += parallel_stats.queries;
    outcome.stats.iterations += parallel_stats.iterations;
    outcome.stats.points_scanned += parallel_stats.points_scanned;
    outcome.stats.numeric_faults += parallel_stats.numeric_faults;
  }
  outcome.numeric_faults += prog.numeric_faults;
  outcome.deadline_expired |= prog.deadline_expired;
  outcome.cancelled |= prog.cancelled;

  if (prog.cancelled) {
    // A cancelled request is never "served": keep whatever frame exists but
    // report the cancellation.
    outcome.frame = std::move(prog.frame);
    outcome.tier = prog.pixels_evaluated > 0 ? QualityTier::kProgressive
                                             : QualityTier::kFlat;
    RecordFault(&outcome, CancelledError("render cancelled"));
    Finalize(opts, &outcome);
    return outcome;
  }

  if (!prog.status.ok()) {
    // Internal/injected fault in the certified path.
    RecordFault(&outcome, prog.status);
    if (opts.degrade) RenderCoarse(grid, opts, &outcome);
    Finalize(opts, &outcome);
    return outcome;
  }

  if (prog.completed && prog.numeric_faults == 0) {
    outcome.frame = std::move(prog.frame);
    outcome.tier = QualityTier::kCertified;
    outcome.certified_eps = opts.eps;
    ClampTier(opts, &outcome);
    Finalize(opts, &outcome);
    return outcome;
  }

  if (prog.completed || prog.pixels_evaluated > 0) {
    // Fully painted but either clamped somewhere or cut short: a usable
    // frame without a certificate.
    outcome.frame = std::move(prog.frame);
    outcome.tier = QualityTier::kProgressive;
    if (outcome.deadline_expired && !opts.degrade) {
      RecordFault(&outcome, DeadlineExceededError("render budget exhausted"));
    }
    Finalize(opts, &outcome);
    return outcome;
  }

  // Deadline fired before a single pixel was refined.
  if (!opts.degrade) {
    RecordFault(&outcome, DeadlineExceededError("render budget exhausted"));
    Finalize(opts, &outcome);
    return outcome;
  }
  RenderCoarse(grid, opts, &outcome);
  Finalize(opts, &outcome);
  return outcome;
}

}  // namespace kdv
