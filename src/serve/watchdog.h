// Render watchdog: detects and kills wedged renders.
//
// The cooperative deadline layer (util/cancel.h) only works while the
// render keeps reaching its poll points. A render stuck where the deadline
// is never polled — a pathological leaf scan, a bug, an injected
// `refine.stall` — is invisible to it: the client times out, the worker
// thread stays occupied, and under load the whole pool can wedge one
// request at a time. The watchdog is the non-cooperative backstop: a
// monitor thread that watches every in-flight render and force-cancels any
// that is clearly stuck, by either criterion:
//
//   * overrun:     elapsed > deadline_multiple × the request's budget
//                  (only for requests that have a budget), or
//                  elapsed > no_budget_kill_seconds for budgetless ones.
//   * no progress: the render's heartbeat counter (bumped on every
//                  cooperative poll inside the refinement loops) has not
//                  moved for no_progress_seconds. A slow render heartbeats;
//                  a wedged one goes silent. Applies only after the first
//                  beat — renders on paths without heartbeat
//                  instrumentation (the coarse tier) are never flagged by
//                  this criterion, and a render wedged before its first
//                  poll point is caught by the overrun criterion instead.
//
// The kill is delivered on a dedicated force-cancel token (not the
// client's), so the render unwinds through the normal kCancelled path with
// a finite frame. Each kill produces a structured StallReport, and the
// service trips its circuit breaker on it, so repeated stalls shed the
// certified path entirely.
//
// Thread safety: all methods may be called from any thread. Watch handles
// are shared_ptrs — a render that finishes while the monitor is inspecting
// it stays valid until the monitor drops its reference.
#ifndef QUADKDV_SERVE_WATCHDOG_H_
#define QUADKDV_SERVE_WATCHDOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/cancel.h"
#include "util/timer.h"

namespace kdv {

// One watched render. The service threads `kill` and `heartbeat` into the
// render's QueryControl (via ResilientRenderOptions) and checks killed()
// after the render returns to attribute the cancellation to the watchdog.
struct WatchEntry {
  CancelToken kill;
  std::atomic<uint64_t> heartbeat{0};
  std::atomic<bool> killed{false};

  double budget_seconds = -1.0;  // < 0: no deadline
  uint64_t request_id = 0;
  Timer started;

  bool WasKilled() const { return killed.load(std::memory_order_acquire); }
};

// Structured record of one watchdog kill.
struct StallReport {
  uint64_t request_id = 0;
  double elapsed_seconds = 0.0;
  double budget_seconds = -1.0;
  uint64_t heartbeat = 0;   // last observed count
  bool no_progress = false; // true: heartbeat criterion; false: overrun
};

class RenderWatchdog {
 public:
  struct Options {
    // Off by default: the watchdog is opt-in (serve-sim --watchdog, tests),
    // so pre-watchdog service behavior is unchanged unless asked for.
    bool enabled = false;
    // Monitor wake-up period. The detection latency bound is
    // poll_interval_seconds on top of the criterion itself.
    double poll_interval_seconds = 0.01;
    // Overrun criterion: kill at deadline_multiple × budget.
    double deadline_multiple = 2.0;
    // Overrun criterion for budgetless renders (they have no deadline to
    // multiply); <= 0 disables killing them on elapsed time alone.
    double no_budget_kill_seconds = 30.0;
    // No-progress criterion: kill when the heartbeat has been static this
    // long (and the render has run at least this long); <= 0 disables it.
    double no_progress_seconds = 1.0;
    // Monotonic time source; null uses CurrentClock() (resolved once, at
    // construction). The render service passes its own clock through here.
    Clock* clock = nullptr;
    // When false, no monitor thread is ever spawned and the owner drives
    // SweepOnce() itself — the simulator's mode, where sweeps must happen
    // at deterministic points of virtual time rather than on a real thread.
    bool start_monitor = true;
  };

  // `on_stall` is invoked (on the monitor thread) for every kill, after the
  // force-cancel has been delivered. May be null.
  using StallFn = std::function<void(const StallReport&)>;

  explicit RenderWatchdog(Options options, StallFn on_stall = nullptr);
  ~RenderWatchdog();  // Stop()

  RenderWatchdog(const RenderWatchdog&) = delete;
  RenderWatchdog& operator=(const RenderWatchdog&) = delete;

  // Registers a render about to start. Returns the handle whose kill token
  // and heartbeat the caller must thread into the render; never null. The
  // monitor starts lazily on first registration.
  std::shared_ptr<WatchEntry> Watch(uint64_t request_id,
                                    double budget_seconds);
  // De-registers a finished render (idempotent; entry may already be gone).
  void Unwatch(const std::shared_ptr<WatchEntry>& entry);

  // Runs one monitor sweep synchronously — the unit-test entry point (the
  // background thread calls the same sweep). Returns the number of kills
  // delivered by this sweep.
  int SweepOnce();

  // Stops the monitor thread. Registered entries stay valid (shared_ptrs);
  // no further kills are delivered.
  void Stop();

  uint64_t kills() const { return kills_.load(std::memory_order_relaxed); }
  // All stall reports recorded so far, oldest first (capped internally).
  std::vector<StallReport> stall_reports() const;

 private:
  void MonitorLoop();
  void EnsureMonitorLocked();

  const Options options_;
  const StallFn on_stall_;
  Clock* const clock_;

  mutable std::mutex mu_;
  // Set by Stop(): ends the monitor's inter-sweep wait immediately, so
  // shutdown latency is one sweep, not up to one poll period.
  Waker stop_waker_;
  bool stopping_ = false;
  bool monitor_running_ = false;
  std::thread monitor_;
  std::vector<std::shared_ptr<WatchEntry>> entries_;
  // Heartbeat value and when it was last seen moving, parallel to entries_.
  struct Progress {
    uint64_t last_heartbeat = 0;
    double last_change_seconds = 0.0;
  };
  std::vector<Progress> progress_;
  std::vector<StallReport> reports_;
  std::atomic<uint64_t> kills_{0};
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_WATCHDOG_H_
