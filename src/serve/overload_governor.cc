#include "serve/overload_governor.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"

namespace kdv {

namespace {

// Transition-log cap: enough for any test or serve-sim run; a pathological
// flapping governor (which the hysteresis exists to prevent) must not grow
// memory without bound.
constexpr size_t kMaxTransitions = 1024;

// Registry mirror of the governor's live signals: pressure/level as gauges
// (latest assessment wins), level changes and sheds as counters.
struct GovernorObs {
  obs::Gauge* pressure;
  obs::Gauge* level;
  obs::Counter* transitions;
  obs::Counter* sheds;
  GovernorObs() {
    auto& r = obs::MetricsRegistry::Global();
    pressure = r.GetGauge("kdv_governor_pressure");
    level = r.GetGauge("kdv_governor_level");
    transitions = r.GetCounter("kdv_governor_transitions_total");
    sheds = r.GetCounter("kdv_governor_sheds_total");
  }
  static GovernorObs& Get() {
    static GovernorObs& o = *new GovernorObs();
    return o;
  }
};

}  // namespace

const char* OverloadGovernor::LevelName(Level level) {
  switch (level) {
    case Level::kNormal:
      return "normal";
    case Level::kProgressive:
      return "progressive";
    case Level::kCoarse:
      return "coarse";
  }
  return "unknown";
}

OverloadGovernor::OverloadGovernor(Options options)
    : options_(std::move(options)),
      clock_(options_.clock != nullptr ? options_.clock : CurrentClock()) {}

double OverloadGovernor::Now() const { return clock_->NowSeconds(); }

void OverloadGovernor::RecordQueueWait(double seconds) {
  if (!options_.enabled || seconds < 0.0) return;
  const double now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  if (!have_queue_sample_) {
    queue_wait_ewma_ = seconds;
    have_queue_sample_ = true;
  } else {
    const double a = std::clamp(options_.ewma_alpha, 1e-3, 1.0);
    queue_wait_ewma_ = a * seconds + (1.0 - a) * queue_wait_ewma_;
  }
  queue_wait_touched_ = now;
}

void OverloadGovernor::RecordInFlight(size_t in_flight) {
  if (!options_.enabled) return;
  std::lock_guard<std::mutex> lock(mu_);
  in_flight_ = in_flight;
}

double OverloadGovernor::CombinedPressureLocked() const {
  double pressure = 0.0;
  if (options_.queue_wait_saturation_seconds > 0.0) {
    pressure = std::max(
        pressure, queue_wait_ewma_ / options_.queue_wait_saturation_seconds);
  }
  if (options_.in_flight_capacity > 0) {
    // Capped: a full in-flight table is admission control's to shed (see
    // Options::in_flight_pressure_cap).
    pressure = std::max(
        pressure,
        std::min(static_cast<double>(in_flight_) /
                     static_cast<double>(options_.in_flight_capacity),
                 options_.in_flight_pressure_cap));
  }
  if (options_.memory_budget_bytes > 0) {
    pressure = std::max(
        pressure,
        static_cast<double>(MemBudget::Global().used_bytes()) /
            static_cast<double>(options_.memory_budget_bytes));
  }
  return pressure;
}

double OverloadGovernor::EnterThreshold(Level level) const {
  switch (level) {
    case Level::kProgressive:
      return options_.enter_progressive;
    case Level::kCoarse:
      return options_.enter_coarse;
    case Level::kNormal:
      break;
  }
  return 0.0;
}

OverloadGovernor::Decision OverloadGovernor::Assess() {
  Decision decision;
  if (!options_.enabled) return decision;

  const double now = Now();
  std::lock_guard<std::mutex> lock(mu_);
  ++assessments_;
  const size_t transitions_before = transitions_.size();
  // Age the queue-wait EWMA. Samples only arrive when admitted requests
  // dequeue, so during a full shed the signal receives none — without decay
  // it would freeze at its burst peak and keep the governor shedding long
  // after the queue has drained (a self-sustaining outage).
  if (have_queue_sample_ &&
      options_.queue_wait_decay_halflife_seconds > 0.0) {
    const double dt = now - queue_wait_touched_;
    if (dt > 0.0) {
      queue_wait_ewma_ *=
          std::exp2(-dt / options_.queue_wait_decay_halflife_seconds);
      queue_wait_touched_ = now;
    }
  }
  const double pressure = CombinedPressureLocked();
  last_pressure_ = pressure;

  // Escalate immediately to whatever level the pressure demands.
  Level target = Level::kNormal;
  if (pressure >= options_.enter_coarse) {
    target = Level::kCoarse;
  } else if (pressure >= options_.enter_progressive) {
    target = Level::kProgressive;
  }
  if (static_cast<int>(target) > static_cast<int>(level_)) {
    transitions_.push_back({now, level_, target, pressure});
    level_ = target;
    calm_since_ = -1.0;
  } else if (level_ != Level::kNormal) {
    // De-escalate hysteretically: pressure must stay clear of the current
    // level's entry threshold (by exit_margin) for recover_hold_seconds,
    // then step down exactly one level and restart the hold. One step at a
    // time keeps a recovering service from slamming back to full cost while
    // the backlog is still draining.
    const double exit_below = EnterThreshold(level_) - options_.exit_margin;
    if (pressure < exit_below) {
      if (calm_since_ < 0.0) calm_since_ = now;
      if (now - calm_since_ >= options_.recover_hold_seconds) {
        const Level stepped =
            static_cast<Level>(static_cast<int>(level_) - 1);
        transitions_.push_back({now, level_, stepped, pressure});
        level_ = stepped;
        calm_since_ = -1.0;
      }
    } else {
      calm_since_ = -1.0;
    }
  }
  if (static_cast<int>(level_) > static_cast<int>(max_level_)) {
    max_level_ = level_;
  }

  decision.level = level_;
  decision.pressure = pressure;
  decision.shed = pressure >= options_.shed_ceiling;
  if (options_.eps_max_multiplier > 1.0 &&
      level_ != Level::kNormal &&
      pressure > options_.enter_progressive) {
    // Linear ramp: ×1 at the brownout entry, ×eps_max_multiplier at the
    // shed ceiling (clamped beyond).
    const double span =
        options_.shed_ceiling - options_.enter_progressive;
    const double t = span > 0.0
                         ? std::clamp((pressure - options_.enter_progressive) /
                                          span,
                                      0.0, 1.0)
                         : 1.0;
    decision.eps_multiplier = 1.0 + t * (options_.eps_max_multiplier - 1.0);
  }

  if (decision.shed) {
    ++sheds_;
    GovernorObs::Get().sheds->Increment();
  } else if (decision.level != Level::kNormal) {
    ++activations_;
  }
  // Registry mirror: gauges take the latest assessment, transitions count
  // level changes this call pushed (0 or 1).
  GovernorObs& go = GovernorObs::Get();
  go.pressure->Set(pressure);
  go.level->Set(static_cast<double>(static_cast<int>(level_)));
  if (transitions_.size() > transitions_before) {
    go.transitions->Increment(transitions_.size() - transitions_before);
  }
  if (transitions_.size() > kMaxTransitions) {
    transitions_.erase(transitions_.begin(),
                       transitions_.begin() +
                           (transitions_.size() - kMaxTransitions));
  }
  return decision;
}

OverloadGovernor::Stats OverloadGovernor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats stats;
  stats.assessments = assessments_;
  stats.activations = activations_;
  stats.sheds = sheds_;
  stats.level = level_;
  stats.max_level = max_level_;
  stats.pressure = last_pressure_;
  stats.queue_wait_ewma = queue_wait_ewma_;
  return stats;
}

std::vector<OverloadGovernor::Transition> OverloadGovernor::transitions()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  return transitions_;
}

}  // namespace kdv
