// Startup recovery and checkpointing over a persisted state directory.
//
// Layout (see index/manifest.h):
//
//   <state>/MANIFEST                the atomic commit point
//   <state>/index-%08llu.kdv        generation-numbered checksummed indexes
//   <state>/wal/seg-%08llu.kdvj     update-journal segments
//
// Recover() turns whatever a crash (or bit rot, or an operator's rm) left
// in that directory back into a servable dataset, never trusting a byte
// that fails its checksum:
//
//   * A valid manifest + valid index + clean/torn-tail journal is the happy
//     path: load, replay, done. A torn journal tail (crash mid-append) is
//     repaired in place.
//   * A corrupt index file is quarantined (renamed *.quarantine) and the
//     dataset is rebuilt from the CSV fallback when one is configured. The
//     journal is quarantined with it — its batches are deltas against the
//     lost index, and replaying them over a rebuilt base is not exact — so
//     the report flags possible data loss.
//   * A corrupt manifest is quarantined and the highest generation index
//     that still verifies is scavenged. The journal floor died with the
//     manifest, so segments are quarantined rather than risk double-apply.
//   * Orphan index generations (a checkpoint that crashed before its
//     manifest flip) and stale *.kdvtmp temps are deleted silently — they
//     were never committed.
//
// Every decision lands in the RecoveryReport so serve-sim / kdvtool can
// print it and tests can assert on it. Recovery itself writes only
// atomically, so a crash *during* recovery is just another recovery.
#ifndef QUADKDV_SERVE_RECOVERY_MANAGER_H_
#define QUADKDV_SERVE_RECOVERY_MANAGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "geom/point.h"
#include "index/journal.h"
#include "index/kdtree.h"
#include "util/status.h"

namespace kdv {

struct RecoveryOptions {
  std::string state_dir;

  // Dataset of last resort: when the persisted index is unusable, rebuild
  // from this CSV (columns selected by csv_attributes; empty keeps all).
  // Empty string disables the fallback — recovery then fails instead.
  std::string csv_fallback;
  std::vector<int> csv_attributes;

  size_t leaf_size = 32;            // for trees rebuilt during recovery
  Journal::Options journal;
};

// Where the recovered dataset ultimately came from.
enum class RecoverySource {
  kManifest,        // committed manifest + index verified
  kScavengedIndex,  // manifest lost; highest verifiable index adopted
  kCsvRebuild,      // persisted index unusable; rebuilt from csv_fallback
};

const char* RecoverySourceName(RecoverySource source);

struct RecoveryReport {
  RecoverySource source = RecoverySource::kManifest;
  uint64_t generation = 0;
  std::vector<std::string> quarantined;  // files renamed to *.quarantine
  JournalReplayStats journal_stats;
  bool journal_quarantined = false;  // replay refused; segments set aside
  // True when recovery cannot prove the result equals the pre-crash state
  // (scavenge or CSV rebuild, or a quarantined journal).
  bool possible_data_loss = false;
  uint64_t orphan_indexes_removed = 0;  // uncommitted checkpoint leftovers
  uint64_t stale_temps_removed = 0;     // *.kdvtmp from torn atomic writes

  // One line, e.g. "recovered gen 3 from manifest, replayed 2 records
  // (120 points), quarantined 0 files".
  std::string Summary() const;
};

// The servable result of recovery: the point set with all journaled batches
// applied, its index, and the journal reopened for further appends.
struct RecoveredState {
  PointSet live_points;
  std::unique_ptr<KdTree> tree;
  std::unique_ptr<Journal> journal;
  uint64_t generation = 0;
  std::string state_dir;
  size_t leaf_size = 32;
};

class RecoveryManager {
 public:
  // Initializes a fresh state directory from `points`: index generation 1,
  // a manifest naming it, and an empty journal at floor 1. Fails if the
  // directory already holds a readable manifest (refuses to clobber state).
  static StatusOr<RecoveredState> Bootstrap(const RecoveryOptions& options,
                                            PointSet points);

  // Recovers the state directory per the policy above. `report` (optional)
  // receives the full account even when the overall Status is non-OK.
  static StatusOr<RecoveredState> Recover(const RecoveryOptions& options,
                                          RecoveryReport* report);

  // Folds everything journaled so far into a fresh index generation:
  // rotates the journal, writes index generation N+1 from the live points,
  // atomically flips the manifest, then drops folded segments and the old
  // index file. A crash at any step leaves either the old or the new
  // committed state for the next Recover(). On success `state` holds the
  // new generation and (rebuilt) tree.
  static Status RunCheckpoint(RecoveredState* state);
};

}  // namespace kdv

#endif  // QUADKDV_SERVE_RECOVERY_MANAGER_H_
