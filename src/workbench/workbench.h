// High-level facade: dataset -> index -> method -> εKDV/τKDV frames.
//
// A Workbench owns one indexed dataset plus the bound-function objects for
// every method, and hands out ready-to-use KdeEvaluators. This is the
// entry-point API used by the examples and benchmarks:
//
//   kdv::Workbench bench(points, kdv::KernelType::kGaussian);
//   kdv::KdeEvaluator quad = bench.MakeEvaluator(kdv::Method::kQuad);
//   kdv::DensityFrame frame = kdv::RenderEpsFrame(quad, grid, 0.01, nullptr);
#ifndef QUADKDV_WORKBENCH_WORKBENCH_H_
#define QUADKDV_WORKBENCH_WORKBENCH_H_

#include <map>
#include <memory>
#include <utility>

#include "bounds/node_bounds.h"
#include "core/evaluator.h"
#include "data/validate.h"
#include "geom/rect.h"
#include "index/kdtree.h"
#include "kernel/kernel.h"
#include "util/status.h"

namespace kdv {

// Query-parameter validation for the public entry points (Workbench,
// kdvtool). Each returns OK or InvalidArgument with a message naming the
// parameter; none of them abort. ε, τ, and γ must all be finite and > 0 —
// ε = 0 would demand exact bounds from the refinement loop, τ = 0 makes
// every pixel trivially "above threshold", and γ <= 0 is not a bandwidth.
Status ValidateEps(double eps);
Status ValidateTau(double tau);
Status ValidateGamma(double gamma);

class Workbench {
 public:
  struct Options {
    size_t leaf_size = 32;
    // If >= 0, overrides Scott's-rule gamma; weight stays 1/n.
    double gamma_override = -1.0;
    BoundsOptions bounds;
    // Ingestion policy applied by Create() before indexing.
    ValidateOptions validate;
  };

  // Validating factory: runs ValidatePointSet under options.validate, then
  // indexes the surviving points. Returns InvalidArgument for unusable data
  // (empty, or rejected under the configured policy) and for a non-finite
  // or zero options.gamma_override (negative means "unset" and is fine);
  // degenerate-but-usable geometry (single point, all-identical,
  // zero-variance dimension) succeeds with the degeneracy recorded in
  // ingest_report() — Scott's rule falls back to a unit bandwidth, so
  // densities stay finite.
  static StatusOr<std::unique_ptr<Workbench>> Create(PointSet points,
                                                     KernelType kernel,
                                                     Options options);
  static StatusOr<std::unique_ptr<Workbench>> Create(PointSet points,
                                                     KernelType kernel) {
    return Create(std::move(points), kernel, Options());
  }

  // Indexes `points` and derives kernel parameters (Scott's rule).
  // Pre-validated trusted inputs only: aborts on an empty set and indexes
  // NaN/Inf coordinates as-is. Untrusted data goes through Create().
  Workbench(PointSet points, KernelType kernel)
      : Workbench(std::move(points), kernel, Options()) {}
  Workbench(PointSet points, KernelType kernel, Options options);

  Workbench(const Workbench&) = delete;
  Workbench& operator=(const Workbench&) = delete;

  const KdTree& tree() const { return *tree_; }
  const KernelParams& params() const { return params_; }
  const Rect& data_bounds() const { return data_bounds_; }
  // What ingestion saw; only meaningful for Create()-built workbenches
  // (default-empty otherwise).
  const IngestReport& ingest_report() const { return ingest_report_; }
  KernelType kernel() const { return params_.type; }
  size_t num_points() const { return tree_->num_points(); }

  // True if `method` supports this kernel for the bound-based framework
  // (paper Table 6). kExact is always supported.
  bool Supports(Method method) const;

  // Returns an evaluator running `method` over the full dataset. The
  // Workbench keeps ownership of the underlying tree and bound function;
  // the evaluator is valid as long as the Workbench lives. Must not be
  // called with kZorder (see MakeZorderEvaluator) or an unsupported method.
  //
  // NOT thread-safe: this lazily builds and caches the bound function for
  // `method` (and MakeZorderEvaluator caches sampled trees), mutating the
  // Workbench. Create every evaluator you need BEFORE spawning serving
  // threads; the returned evaluators themselves are safe to share
  // concurrently (see KdeEvaluator).
  KdeEvaluator MakeEvaluator(Method method);

  // Z-order baseline: draws the ε-determined coreset, indexes it, and
  // returns an exact-scan evaluator over the weighted sample (paper §2,
  // "dataset sampling" camp; δ = 0.2 as in the experiments). The sampled
  // tree is cached per sample size.
  KdeEvaluator MakeZorderEvaluator(double eps, double delta = 0.2);

 private:
  std::unique_ptr<KdTree> tree_;
  KernelParams params_;
  Rect data_bounds_;
  Options options_;
  IngestReport ingest_report_;
  std::map<Method, std::unique_ptr<NodeBounds>> bounds_cache_;

  struct ZorderContext {
    std::unique_ptr<KdTree> tree;
    KernelParams params;
  };
  std::map<size_t, ZorderContext> zorder_cache_;  // keyed by sample size
};

}  // namespace kdv

#endif  // QUADKDV_WORKBENCH_WORKBENCH_H_
