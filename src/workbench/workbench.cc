#include "workbench/workbench.h"

#include <cmath>
#include <sstream>
#include <utility>

#include "data/datasets.h"
#include "sampling/zorder.h"
#include "util/check.h"

namespace kdv {

namespace {

Status ValidatePositiveFinite(const char* name, double value) {
  if (!std::isfinite(value) || value <= 0.0) {
    std::ostringstream oss;
    oss << name << " must be finite and > 0, got " << value;
    return InvalidArgumentError(oss.str());
  }
  return OkStatus();
}

}  // namespace

Status ValidateEps(double eps) { return ValidatePositiveFinite("eps", eps); }

Status ValidateTau(double tau) { return ValidatePositiveFinite("tau", tau); }

Status ValidateGamma(double gamma) {
  return ValidatePositiveFinite("gamma", gamma);
}

StatusOr<std::unique_ptr<Workbench>> Workbench::Create(PointSet points,
                                                       KernelType kernel,
                                                       Options options) {
  // gamma_override < 0 is the "use Scott's rule" sentinel; anything else
  // must be a usable bandwidth scale. Checked before indexing so a NaN
  // override can't silently poison every later bound computation.
  if (!(options.gamma_override < 0.0)) {
    KDV_RETURN_IF_ERROR(ValidateGamma(options.gamma_override));
  }
  IngestReport report;
  KDV_RETURN_IF_ERROR(
      ValidatePointSet(&points, options.validate, &report));
  auto bench =
      std::make_unique<Workbench>(std::move(points), kernel, options);
  bench->ingest_report_ = report;
  return bench;
}

Workbench::Workbench(PointSet points, KernelType kernel, Options options)
    : options_(options) {
  KDV_CHECK_MSG(!points.empty(), "Workbench requires a non-empty dataset");
  params_ = MakeScottParams(kernel, points);
  if (options_.gamma_override >= 0.0) params_.gamma = options_.gamma_override;
  data_bounds_ = BoundingBox(points);
  KdTree::Options tree_options;
  tree_options.leaf_size = options_.leaf_size;
  tree_ = std::make_unique<KdTree>(std::move(points), tree_options);
}

bool Workbench::Supports(Method method) const {
  switch (method) {
    case Method::kExact:
    case Method::kZorder:
      return true;
    case Method::kKarl:
      return params_.type == KernelType::kGaussian;
    default:
      return MakeNodeBounds(method, params_, options_.bounds) != nullptr;
  }
}

KdeEvaluator Workbench::MakeEvaluator(Method method) {
  KDV_CHECK_MSG(method != Method::kZorder,
                "use MakeZorderEvaluator for the Z-order baseline");
  if (method == Method::kExact) {
    return KdeEvaluator(tree_.get(), params_, nullptr);
  }
  auto it = bounds_cache_.find(method);
  if (it == bounds_cache_.end()) {
    std::unique_ptr<NodeBounds> bounds =
        MakeNodeBounds(method, params_, options_.bounds);
    KDV_CHECK_MSG(bounds != nullptr,
                  "method does not support this kernel (paper Table 6)");
    it = bounds_cache_.emplace(method, std::move(bounds)).first;
  }
  return KdeEvaluator(tree_.get(), params_, it->second.get());
}

KdeEvaluator Workbench::MakeZorderEvaluator(double eps, double delta) {
  const size_t n = tree_->num_points();
  const size_t m = ZorderSampleSize(eps, delta, n);
  auto it = zorder_cache_.find(m);
  if (it == zorder_cache_.end()) {
    ZorderContext ctx;
    PointSet sample = ZorderSample(tree_->points(), m);
    ctx.params = ScaleWeightForSample(params_, n, sample.size());
    KdTree::Options tree_options;
    tree_options.leaf_size = options_.leaf_size;
    ctx.tree = std::make_unique<KdTree>(std::move(sample), tree_options);
    it = zorder_cache_.emplace(m, std::move(ctx)).first;
  }
  // Z-order runs exact KDV on the reduced dataset (no bound function).
  return KdeEvaluator(it->second.tree.get(), it->second.params, nullptr);
}

}  // namespace kdv
