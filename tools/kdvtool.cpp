// kdvtool — command-line front end to the QUAD KDV library.
//
// Subcommands:
//   generate    synthesize a dataset analogue and write it as CSV
//   info        dataset summary (bounds, Scott bandwidth, index stats);
//               with --index FILE, verify and summarize a saved index
//   index       build a kd-tree index and persist it (checksummed v2)
//   render      εKDV heat map -> PPM
//   hotspot     τKDV two-color map -> PPM
//   progressive anytime εKDV under a time budget -> PPM
//   serve-sim   closed-loop load generator against the concurrent
//               RenderService (throughput, latency percentiles, shed/
//               degraded/retried counts; --json for machine-readable;
//               --swap-after N hot-swaps the evaluator mid-run;
//               --governor/--watchdog/--scrub arm the runtime
//               self-defense layer: brownout under overload, wedged-
//               render kills, online integrity scrubbing)
//   metrics     run a small serve workload and dump the process metrics
//               registry (Prometheus text, or --json for the escaped
//               JSON snapshot; --metrics-out FILE writes the JSON form)
//   sim         deterministic whole-stack simulation: virtual time, a
//               cooperative scheduler, and seed-derived fault schedules
//               drive the full serve+persistence stack under invariant
//               checkers; failures shrink to a one-line repro
//               (--seed, --seeds N, --until-failure, --replay S)
//   recover     recover a crash-consistent state directory (or --bootstrap
//               one from points); prints the recovery report
//   checkpoint  fold the update journal into a fresh index generation
//   version     print the build stamp (also: kdvtool --version)
//
// Every failure path exits non-zero with a printed reason; bad input (a
// malformed CSV, a truncated index, a NaN flag value) must never abort.
// Exit codes: 0 success (including a degraded budgeted render), 1 failure,
// 2 usage error, 3 budget expired under `render --on-deadline=fail`.
// README.md carries the per-subcommand exit-code table.
//
// Examples:
//   kdvtool generate --dataset crime --scale 0.05 --out crime.csv
//   kdvtool index --in crime.csv --out crime.kdv
//   kdvtool info --index crime.kdv
//   kdvtool render --in crime.csv --eps 0.01 --width 640 --out heat.ppm
//   kdvtool hotspot --in crime.csv --tau-sigma 0.1 --out mask.ppm
//   kdvtool progressive --in crime.csv --budget 0.5 --out partial.ppm
#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "quadkdv.h"
#include "util/flags.h"

namespace {

using namespace kdv;

int Usage() {
  std::fprintf(
      stderr,
      "usage: kdvtool "
      "<generate|info|index|render|hotspot|progressive|classify|regress"
      "|serve-sim|metrics|sim|recover|checkpoint|version> [flags]\n"
      "  common flags: --in FILE.csv | --dataset el_nino|crime|home|hep\n"
      "                --scale S --kernel NAME --method quad|karl|akde|exact\n"
      "                --width W --height H --out FILE\n"
      "                --drop-bad (drop NaN/Inf rows instead of failing)\n"
      "  info:         --index FILE.kdv (verify + summarize a saved index)\n"
      "  index:        --out FILE.kdv [--format-version 1|2]\n"
      "  render:       --eps E [--budget-ms MS --on-deadline degrade|fail]\n"
      "                (degrade: ship best-effort frame, exit 0; fail: exit\n"
      "                3 when the budget expires before certification)\n"
      "                [--threads N (0 = hardware concurrency) --tile-rows R\n"
      "                 --tile-shared on|off (amortize tree traversal across\n"
      "                 tile pixels; off is bit-identical to per-pixel)\n"
      "                 --json (machine-readable stats incl. pruning\n"
      "                 counters and the active SIMD level; KDV_SIMD=\n"
      "                 scalar|sse2|avx2 pins the leaf-kernel dispatch)]\n"
      "  hotspot:      --tau T | --tau-sigma K (tau = mu + K*sigma)\n"
      "                --block (certify whole pixel blocks)\n"
      "  progressive:  --eps E --budget SECONDS\n"
      "  classify:     --in FILE.csv --label-col I (x,y + integer labels)\n"
      "  regress:      --in FILE.csv --target-col I (x,y + target >= 0)\n"
      "  serve-sim:    --threads N (0 = hardware concurrency) --requests R\n"
      "                --budget-ms MS\n"
      "                [--clients C (default 4x threads) --queue Q\n"
      "                 --frame-threads N (intra-frame tile workers)\n"
      "                 --tile-rows R --tile-shared on|off\n"
      "                 --eps E --on-deadline degrade|fail\n"
      "                 --failpoints \"site=action;...\" --json\n"
      "                 --swap-after N (hot-swap the evaluator after N\n"
      "                 completed requests)\n"
      "                 --governor (brownout under overload; tuning:\n"
      "                 --mem-budget-mb MB --queue-wait-sat-ms MS)\n"
      "                 --watchdog (force-cancel wedged renders; tuning:\n"
      "                 --watchdog-multiple X --no-progress-ms MS)\n"
      "                 --scrub (online integrity scrubber; tuning:\n"
      "                 --scrub-interval-ms MS --scrub-samples N\n"
      "                 --scrub-index FILE.kdv); exits 1 on any scrubber\n"
      "                 mismatch]\n"
      "                [--seed S (client backoff jitter base, stamped into\n"
      "                 the JSON report with the build id)]\n"
      "                [--metrics-out FILE (write the process metrics\n"
      "                 registry as JSON; also on render and metrics)]\n"
      "  metrics:      run a small serve workload, then dump the process\n"
      "                metrics registry (Prometheus text; --json for the\n"
      "                JSON snapshot) [--requests N --eps E\n"
      "                --metrics-out FILE]\n"
      "  sim:          deterministic simulation of the whole serve stack\n"
      "                --seed S | --seeds N (sweep S..S+N-1)\n"
      "                | --until-failure (sweep until an invariant breaks)\n"
      "                | --replay S (run S twice; byte-identical event\n"
      "                logs or exit 1)\n"
      "                [--schedule \"at_op:site=action;...\" (replaces the\n"
      "                 seed-derived fault schedule; repro lines use this)\n"
      "                 --ops N --workers N --queue N --n N\n"
      "                 --state-root DIR --faults=0 --plant-bug --json]\n"
      "                failing runs shrink their schedule and print a\n"
      "                one-line repro; exit 1\n"
      "  recover:      --state DIR [--csv FILE.csv (rebuild fallback)]\n"
      "                [--bootstrap (initialize DIR from --in/--dataset)]\n"
      "  checkpoint:   --state DIR [--csv FILE.csv]\n");
  return 2;
}

// Prints a Status as "kdvtool: CODE: message".
void PrintStatus(const Status& status) {
  std::fprintf(stderr, "kdvtool: %s\n", status.ToString().c_str());
}

// --metrics-out FILE: dump the process-wide metrics registry as JSON to
// FILE (atomic write, so a crash never leaves a torn artifact). Shared by
// render, serve-sim, and metrics. Returns 1 on write failure, else 0.
int MaybeWriteMetricsOut(const Flags& flags) {
  const std::string path = flags.GetString("metrics-out", "");
  if (path.empty()) return 0;
  const Status written = AtomicWriteFile(
      path, obs::ExportJson(obs::MetricsRegistry::Global().Snapshot()));
  if (!written.ok()) {
    PrintStatus(written);
    return 1;
  }
  return 0;
}

// Numeric accessor for validated query parameters (ε, τ, γ, budgets).
// Flags::GetDouble silently substitutes the default for malformed or
// non-finite text; here a present-but-unusable value parses to NaN instead,
// so the downstream Validate*() check rejects it by name.
double GetValidatedDouble(const Flags& flags, const std::string& name,
                          double default_value) {
  if (!flags.Has(name)) return default_value;
  const std::string raw = flags.GetString(name, "");
  char* end = nullptr;
  double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == raw.c_str() || *end != '\0') {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return v;  // may be NaN/Inf from the text itself; validation decides
}

// Strict integer accessor for count-like flags (--threads, --tile-rows).
// Flags::GetInt silently substitutes the default for malformed text; here a
// present-but-unusable value parses to INT_MIN so the caller rejects it by
// name with a usage error instead of silently running with the default.
int GetValidatedInt(const Flags& flags, const std::string& name,
                    int default_value) {
  if (!flags.Has(name)) return default_value;
  const std::string raw = flags.GetString(name, "");
  char* end = nullptr;
  long v = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || end == raw.c_str() || *end != '\0' ||
      v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    return std::numeric_limits<int>::min();
  }
  return static_cast<int>(v);
}

// Strict uint64 accessor for seed flags. Seeds span the full 64-bit space,
// which Flags::GetInt would truncate; malformed text fails parsing so the
// caller can reject it by name instead of silently simulating the default.
bool GetSeedFlag(const Flags& flags, const std::string& name,
                 uint64_t default_value, uint64_t* out) {
  *out = default_value;
  if (!flags.Has(name)) return true;
  const std::string raw = flags.GetString(name, "");
  char* end = nullptr;
  errno = 0;
  unsigned long long v = std::strtoull(raw.c_str(), &end, 0);
  if (raw.empty() || end == raw.c_str() || *end != '\0' || errno == ERANGE) {
    return false;
  }
  *out = static_cast<uint64_t>(v);
  return true;
}

// Parses --threads (0 = hardware concurrency) and --tile-rows for the
// intra-frame parallel renderer. Returns false (after printing a usage
// error) on malformed or out-of-range values.
bool ParseFrameThreads(const Flags& flags, const char* cmd, int* threads,
                       int* tile_rows) {
  *threads = GetValidatedInt(flags, "threads", 1);
  if (*threads < 0) {
    std::fprintf(stderr,
                 "kdvtool %s: --threads must be an integer >= 0 "
                 "(0 = hardware concurrency)\n",
                 cmd);
    return false;
  }
  *tile_rows = GetValidatedInt(flags, "tile-rows", 16);
  if (*tile_rows < 1) {
    std::fprintf(stderr, "kdvtool %s: --tile-rows must be an integer >= 1\n",
                 cmd);
    return false;
  }
  return true;
}

// Parses --tile-shared=on|off (default off): shared-traversal tile
// refinement for the frame renderers. Returns false (after printing a usage
// error) on any other value.
bool ParseTileShared(const Flags& flags, const char* cmd, bool* tile_shared) {
  const std::string v = flags.GetString("tile-shared", "off");
  if (v == "on") {
    *tile_shared = true;
    return true;
  }
  if (v == "off") {
    *tile_shared = false;
    return true;
  }
  std::fprintf(stderr, "kdvtool %s: --tile-shared must be 'on' or 'off'\n",
               cmd);
  return false;
}

// Helper pool for an intra-frame parallel render: resolved - 1 workers (the
// caller participates), or null when the render is serial.
std::unique_ptr<ThreadPool> MakeTilePool(int threads) {
  const int resolved = ResolveRenderThreads(threads);
  if (resolved <= 1) return nullptr;
  ThreadPool::Options options;
  options.num_threads = resolved - 1;
  options.max_queue = static_cast<size_t>(resolved) * 2;
  return std::make_unique<ThreadPool>(options);
}

bool ParseKernel(const std::string& name, KernelType* out) {
  const KernelType all[] = {
      KernelType::kGaussian,     KernelType::kTriangular,
      KernelType::kCosine,       KernelType::kExponential,
      KernelType::kEpanechnikov, KernelType::kQuartic,
      KernelType::kUniform,
  };
  for (KernelType k : all) {
    if (name == KernelTypeName(k)) {
      *out = k;
      return true;
    }
  }
  return false;
}

bool ParseMethod(const std::string& name, Method* out) {
  if (name == "quad") {
    *out = Method::kQuad;
  } else if (name == "karl") {
    *out = Method::kKarl;
  } else if (name == "akde") {
    *out = Method::kAkde;
  } else if (name == "tkdc") {
    *out = Method::kTkdc;
  } else if (name == "exact") {
    *out = Method::kExact;
  } else {
    return false;
  }
  return true;
}

bool MakeSpec(const std::string& name, double scale, MixtureSpec* spec) {
  if (name == "el_nino") {
    *spec = ElNinoSpec(scale);
  } else if (name == "crime") {
    *spec = CrimeSpec(scale);
  } else if (name == "home") {
    *spec = HomeSpec(scale);
  } else if (name == "hep") {
    *spec = HepSpec(scale);
  } else {
    return false;
  }
  return true;
}

// Ingestion policy from flags: --drop-bad switches from reject to drop.
ValidateOptions ValidateOptionsFromFlags(const Flags& flags) {
  ValidateOptions options;
  if (flags.GetBool("drop-bad", false)) {
    options.policy = ValidateOptions::BadPointPolicy::kDrop;
  }
  return options;
}

// Loads the input dataset from --in CSV or synthesizes from --dataset.
bool LoadInput(const Flags& flags, PointSet* points) {
  std::string in = flags.GetString("in", "");
  if (!in.empty()) {
    CsvReadStats csv_stats;
    Status status = LoadPointsCsv(in, {}, points, &csv_stats);
    if (!status.ok()) {
      PrintStatus(status);
      return false;
    }
    if (csv_stats.skipped() > 0) {
      std::fprintf(stderr,
                   "kdvtool: %s: skipped %zu rows (%zu malformed/non-finite, "
                   "%zu ragged)\n",
                   in.c_str(), csv_stats.skipped(), csv_stats.skipped_malformed,
                   csv_stats.skipped_ragged);
    }
    if ((*points)[0].dim() < 2) {
      std::fprintf(stderr, "kdvtool: %s: need >= 2 columns\n", in.c_str());
      return false;
    }
    IngestReport report;
    status = ValidatePointSet(points, ValidateOptionsFromFlags(flags),
                              &report);
    if (!status.ok()) {
      PrintStatus(status);
      return false;
    }
    if (report.kept_points < report.input_points || report.degenerate) {
      std::fprintf(stderr, "kdvtool: %s: %s\n", in.c_str(),
                   report.Summary().c_str());
    }
    return true;
  }
  MixtureSpec spec;
  if (!MakeSpec(flags.GetString("dataset", "crime"),
                flags.GetDouble("scale", 0.01), &spec)) {
    std::fprintf(stderr, "kdvtool: unknown --dataset\n");
    return false;
  }
  *points = GenerateMixture(spec);
  return true;
}

int CmdGenerate(const Flags& flags) {
  PointSet points;
  if (!LoadInput(flags, &points)) return 1;
  std::string out = flags.GetString("out", "points.csv");
  Status status = SavePointsCsv(out, points);
  if (!status.ok()) {
    PrintStatus(status);
    return 1;
  }
  std::printf("wrote %zu points to %s\n", points.size(), out.c_str());
  return 0;
}

// Builds a kd-tree over the input and persists it (checksummed v2 format by
// default; --format-version 1 writes the legacy layout).
int CmdIndex(const Flags& flags) {
  PointSet points;
  if (!LoadInput(flags, &points)) return 1;
  KdTree::Options tree_options;
  int leaf_size = flags.GetInt("leaf-size", 32);
  if (leaf_size < 1) {
    std::fprintf(stderr, "kdvtool: --leaf-size must be >= 1\n");
    return 1;
  }
  tree_options.leaf_size = static_cast<size_t>(leaf_size);
  KdTree tree(std::move(points), tree_options);

  std::string out = flags.GetString("out", "index.kdv");
  uint32_t version = static_cast<uint32_t>(
      flags.GetInt("format-version", static_cast<int>(kKdTreeFormatVersion)));
  Status status = SaveKdTree(tree, out, version);
  if (!status.ok()) {
    PrintStatus(status);
    return 1;
  }
  std::printf("indexed %zu points (%zu nodes, depth %d) -> %s (format v%u)\n",
              tree.num_points(), tree.num_nodes(), tree.Depth(), out.c_str(),
              version);
  return 0;
}

struct Session {
  std::unique_ptr<Workbench> bench;
  Method method = Method::kQuad;
  int width = 640;
  int height = 480;
};

bool OpenSession(const Flags& flags, Session* session) {
  PointSet points;
  if (!LoadInput(flags, &points)) return false;

  KernelType kernel = KernelType::kGaussian;
  if (!ParseKernel(flags.GetString("kernel", "gaussian"), &kernel)) {
    std::fprintf(stderr, "kdvtool: unknown --kernel\n");
    return false;
  }
  if (!ParseMethod(flags.GetString("method", "quad"), &session->method)) {
    std::fprintf(stderr, "kdvtool: unknown --method\n");
    return false;
  }
  Workbench::Options options;
  options.gamma_override = GetValidatedDouble(flags, "gamma", -1.0);
  options.validate = ValidateOptionsFromFlags(flags);
  StatusOr<std::unique_ptr<Workbench>> bench =
      Workbench::Create(std::move(points), kernel, options);
  if (!bench.ok()) {
    PrintStatus(bench.status());
    return false;
  }
  session->bench = *std::move(bench);
  if (session->method != Method::kExact &&
      !session->bench->Supports(session->method)) {
    std::fprintf(stderr, "kdvtool: method does not support this kernel\n");
    return false;
  }
  session->width = flags.GetInt("width", 640);
  session->height = flags.GetInt("height", session->width * 3 / 4);
  if (session->width < 1 || session->height < 1) {
    std::fprintf(stderr, "kdvtool: bad resolution\n");
    return false;
  }
  return true;
}

int CmdInfo(const Flags& flags) {
  std::printf("build:        %s\n", BuildStamp().c_str());
  // --index FILE: verify and summarize a persisted index instead of
  // building one from points.
  std::string index_path = flags.GetString("index", "");
  if (!index_path.empty()) {
    StatusOr<std::unique_ptr<KdTree>> tree = LoadKdTree(index_path);
    if (!tree.ok()) {
      PrintStatus(tree.status());
      return 1;
    }
    std::printf("index:        %s (verified)\n", index_path.c_str());
    std::printf("points:       %zu (dim %d)\n", (*tree)->num_points(),
                (*tree)->dim());
    std::printf("kd-tree:      %zu nodes, depth %d\n", (*tree)->num_nodes(),
                (*tree)->Depth());
    return 0;
  }
  Session s;
  if (!OpenSession(flags, &s)) return 1;
  const Workbench& b = *s.bench;
  std::printf("points:       %zu (dim %d)\n", b.num_points(), b.tree().dim());
  std::printf("bounds:       [%g, %g] x [%g, %g]\n", b.data_bounds().lo(0),
              b.data_bounds().hi(0), b.data_bounds().lo(1),
              b.data_bounds().hi(1));
  std::printf("kernel:       %s (gamma=%g, weight=%g)\n",
              KernelTypeName(b.kernel()), b.params().gamma,
              b.params().weight);
  std::printf("kd-tree:      %zu nodes, depth %d\n", b.tree().num_nodes(),
              b.tree().Depth());
  return 0;
}

// Budgeted render path: QUAD under --budget-ms with the degradation ladder
// (or fail-fast with exit code 3 under --on-deadline=fail).
int CmdRenderBudgeted(const Flags& flags, Session* s, double eps, int threads,
                      int tile_rows, bool tile_shared) {
  std::string on_deadline = flags.GetString("on-deadline", "degrade");
  if (on_deadline != "degrade" && on_deadline != "fail") {
    std::fprintf(stderr,
                 "kdvtool: --on-deadline must be 'degrade' or 'fail'\n");
    return 2;
  }
  double budget_ms = GetValidatedDouble(flags, "budget-ms", -1.0);
  if (!(budget_ms >= 0.0)) {  // also catches NaN
    std::fprintf(stderr, "kdvtool: --budget-ms must be >= 0\n");
    return 2;
  }

  KdeEvaluator evaluator = s->bench->MakeEvaluator(s->method);
  PixelGrid grid(s->width, s->height, s->bench->data_bounds());
  ResilientRenderOptions options;
  options.eps = eps;
  options.budget_seconds = budget_ms / 1000.0;
  options.degrade = on_deadline == "degrade";
  options.parallel.num_threads = threads;
  options.parallel.tile_rows = tile_rows;
  options.parallel.tile_shared = tile_shared;
  std::unique_ptr<ThreadPool> pool = MakeTilePool(threads);
  options.tile_pool = pool.get();
  ResilientRenderer renderer(&evaluator);
  RenderOutcome outcome = renderer.Render(grid, options);

  std::string out = flags.GetString("out", "kdv.ppm");
  if (!RenderHeatMap(outcome.frame).WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf(
      "εKDV (%s, eps=%g, budget=%gms): %dx%d tier=%s%s in %.3fs -> %s\n",
      MethodName(s->method), eps, budget_ms, s->width, s->height,
      QualityTierName(outcome.tier),
      outcome.deadline_expired ? " (deadline expired)" : "",
      outcome.stats.seconds, out.c_str());
  const int metrics_rc = MaybeWriteMetricsOut(flags);
  if (!outcome.ok()) {
    PrintStatus(outcome.status);
    return outcome.status.code() == StatusCode::kDeadlineExceeded ? 3 : 1;
  }
  return metrics_rc;
}

int CmdRender(const Flags& flags) {
  Session s;
  if (!OpenSession(flags, &s)) return 1;
  double eps = GetValidatedDouble(flags, "eps", 0.01);
  Status eps_status = ValidateEps(eps);
  if (!eps_status.ok()) {
    PrintStatus(eps_status);
    return 1;
  }
  int threads = 1;
  int tile_rows = 16;
  if (!ParseFrameThreads(flags, "render", &threads, &tile_rows)) return 2;
  bool tile_shared = false;
  if (!ParseTileShared(flags, "render", &tile_shared)) return 2;
  if (flags.Has("budget-ms")) {
    return CmdRenderBudgeted(flags, &s, eps, threads, tile_rows, tile_shared);
  }

  KdeEvaluator evaluator = s.bench->MakeEvaluator(s.method);
  PixelGrid grid(s.width, s.height, s.bench->data_bounds());
  BatchStats stats;
  DensityFrame frame;
  std::unique_ptr<ThreadPool> pool = MakeTilePool(threads);
  if (pool != nullptr || tile_shared) {
    // Tile-shared rendering lives in the tiled driver, so it is routed
    // there even at --threads 1 (pool null: the caller drains every tile).
    RenderOptions ropts;
    ropts.num_threads = threads;
    ropts.tile_rows = tile_rows;
    ropts.tile_shared = tile_shared;
    frame = RenderEpsFrameParallel(evaluator, grid, eps, ropts, pool.get(),
                                   QueryControl(), &stats);
  } else {
    frame = RenderEpsFrame(evaluator, grid, eps, &stats);
  }
  if (!stats.status.ok()) {
    PrintStatus(stats.status);
    return 1;
  }
  std::string out = flags.GetString("out", "kdv.ppm");
  if (!RenderHeatMap(frame).WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  if (flags.GetBool("json", false)) {
    const double px_per_sec =
        stats.seconds > 0.0
            ? static_cast<double>(grid.num_pixels()) / stats.seconds
            : 0.0;
    JsonWriter w;
    w.BeginObject()
        .Key("method").Value(MethodName(s.method))
        .Key("eps").Number(eps, 6)
        .Key("width").Value(s.width)
        .Key("height").Value(s.height)
        .Key("threads").Value(ResolveRenderThreads(threads))
        .Key("tile_shared").Value(tile_shared)
        .Key("simd").Value(SimdLevelName(ActiveSimdLevel()))
        .Key("seconds").Number(stats.seconds, 6)
        .Key("pixels_per_sec").Number(px_per_sec, 8);
    w.Key("work").BeginObject()
        .Key("queries").Value(stats.queries)
        .Key("iterations").Value(stats.iterations)
        .Key("points_scanned").Value(stats.points_scanned)
        .Key("nodes_visited").Value(stats.nodes_visited)
        .EndObject();
    w.Key("tile_pass").BeginObject()
        .Key("nodes_visited").Value(stats.tile_nodes_visited)
        .Key("accepted").Value(stats.tile_accepted)
        .Key("pruned").Value(stats.tile_pruned)
        .Key("tiles_decided").Value(stats.tiles_decided)
        .Key("frontier_cache_hits").Value(stats.frontier_cache_hits)
        .EndObject();
    w.Key("out").Value(out)
        .Key("build").Value(BuildStamp())
        .EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    std::printf("εKDV (%s, eps=%g, threads=%d%s): %dx%d in %.3fs -> %s\n",
                MethodName(s.method), eps, ResolveRenderThreads(threads),
                tile_shared ? ", tile-shared" : "", s.width, s.height,
                stats.seconds, out.c_str());
  }
  return MaybeWriteMetricsOut(flags);
}

int CmdHotspot(const Flags& flags) {
  Session s;
  if (!OpenSession(flags, &s)) return 1;
  KdeEvaluator evaluator = s.bench->MakeEvaluator(
      s.method == Method::kQuad ? Method::kQuad : s.method);
  PixelGrid grid(s.width, s.height, s.bench->data_bounds());

  double tau;
  if (flags.Has("tau")) {
    tau = GetValidatedDouble(flags, "tau", 0.0);
    Status tau_status = ValidateTau(tau);
    if (!tau_status.ok()) {
      PrintStatus(tau_status);
      return 1;
    }
  } else {
    MeanStd stats = EstimateDensityStats(evaluator, grid, /*stride=*/8);
    tau = stats.mean + flags.GetDouble("tau-sigma", 0.0) * stats.stddev;
    std::printf("tau = %g (mu=%g, sigma=%g)\n", tau, stats.mean,
                stats.stddev);
  }
  int threads = 1;
  int tile_rows = 16;
  if (!ParseFrameThreads(flags, "hotspot", &threads, &tile_rows)) return 2;
  bool tile_shared = false;
  if (!ParseTileShared(flags, "hotspot", &tile_shared)) return 2;
  BinaryFrame mask;
  double seconds = 0.0;
  if (flags.GetBool("block", false)) {
    // Block-certified rendering: whole pixel regions decided wholesale.
    BlockTauStats stats;
    mask = RenderTauFrameBlocked(evaluator, grid, tau, &stats);
    seconds = stats.seconds;
    std::printf("block mode: %llu blocks certified, %llu per-pixel "
                "fallbacks\n",
                static_cast<unsigned long long>(stats.blocks_certified),
                static_cast<unsigned long long>(stats.pixel_evaluations));
  } else {
    BatchStats stats;
    std::unique_ptr<ThreadPool> pool = MakeTilePool(threads);
    if (pool != nullptr || tile_shared) {
      RenderOptions ropts;
      ropts.num_threads = threads;
      ropts.tile_rows = tile_rows;
      ropts.tile_shared = tile_shared;
      mask = RenderTauFrameParallel(evaluator, grid, tau, ropts, pool.get(),
                                    QueryControl(), &stats);
    } else {
      mask = RenderTauFrame(evaluator, grid, tau, &stats);
    }
    if (!stats.status.ok()) {
      PrintStatus(stats.status);
      return 1;
    }
    seconds = stats.seconds;
  }
  std::string out = flags.GetString("out", "hotspots.ppm");
  if (!RenderThresholdMap(mask).WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  size_t hot = 0;
  for (uint8_t v : mask.values) hot += v;
  std::printf("τKDV (%s): %.1f%% hot pixels in %.3fs -> %s\n",
              MethodName(s.method),
              100.0 * static_cast<double>(hot) /
                  static_cast<double>(mask.values.size()),
              seconds, out.c_str());
  return 0;
}

int CmdProgressive(const Flags& flags) {
  Session s;
  if (!OpenSession(flags, &s)) return 1;
  double eps = GetValidatedDouble(flags, "eps", 0.01);
  Status eps_status = ValidateEps(eps);
  if (!eps_status.ok()) {
    PrintStatus(eps_status);
    return 1;
  }
  double budget = flags.GetDouble("budget", 0.5);
  KdeEvaluator evaluator = s.bench->MakeEvaluator(s.method);
  PixelGrid grid(s.width, s.height, s.bench->data_bounds());
  ProgressiveResult r = RenderProgressive(evaluator, grid, eps, budget);
  if (!r.status.ok()) {
    PrintStatus(r.status);
    return 1;
  }
  std::string out = flags.GetString("out", "progressive.ppm");
  if (!RenderHeatMap(r.frame).WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf(
      "progressive εKDV (%s): %llu/%zu pixels in %.3fs%s -> %s\n",
      MethodName(s.method),
      static_cast<unsigned long long>(r.pixels_evaluated), grid.num_pixels(),
      r.stats.seconds, r.completed ? " (completed)" : "", out.c_str());
  return 0;
}

// Renders a kernel-density-classification map: each pixel colored by the
// class with the highest class-conditional density. Input CSV must carry a
// label column (--label-col, default: last column); the remaining first two
// numeric columns are the coordinates.
int CmdClassify(const Flags& flags) {
  std::string in = flags.GetString("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "kdvtool classify: --in FILE.csv required\n");
    return 1;
  }
  PointSet rows;
  Status load_status = LoadPointsCsv(in, {}, &rows);
  if (!load_status.ok()) {
    PrintStatus(load_status);
    return 1;
  }
  const int cols = rows[0].dim();
  int label_col = flags.GetInt("label-col", cols - 1);
  if (cols < 3 || label_col < 0 || label_col >= cols) {
    std::fprintf(stderr, "kdvtool classify: need x,y plus a label column\n");
    return 1;
  }

  std::vector<PointSet> classes;
  Rect domain(2);
  for (const Point& row : rows) {
    int label = static_cast<int>(row[label_col]);
    if (label < 0 || label > 63) {
      std::fprintf(stderr, "kdvtool classify: labels must be in [0, 63]\n");
      return 1;
    }
    Point p(2);
    int c = 0;
    for (int j = 0; j < cols && c < 2; ++j) {
      if (j == label_col) continue;
      p[c++] = row[j];
    }
    if (static_cast<size_t>(label) >= classes.size()) {
      classes.resize(label + 1);
    }
    classes[label].push_back(p);
    domain.Expand(p);
  }
  for (size_t c = 0; c < classes.size(); ++c) {
    if (classes[c].empty()) {
      std::fprintf(stderr, "kdvtool classify: class %zu has no points\n", c);
      return 1;
    }
  }
  const int k = static_cast<int>(classes.size());

  KdeClassifier::Options options;
  if (!ParseMethod(flags.GetString("method", "quad"), &options.method)) {
    std::fprintf(stderr, "kdvtool: unknown --method\n");
    return 1;
  }
  if (!ParseKernel(flags.GetString("kernel", "gaussian"), &options.kernel)) {
    std::fprintf(stderr, "kdvtool: unknown --kernel\n");
    return 1;
  }
  KdeClassifier classifier(std::move(classes), options);

  int width = flags.GetInt("width", 320);
  int height = flags.GetInt("height", width * 3 / 4);
  PixelGrid grid(width, height, domain);
  Image img(width, height);
  Timer timer;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      int label = classifier.Classify(grid.PixelCenter(x, y)).label;
      img.at(x, y) = HeatColor(k > 1 ? static_cast<double>(label) / (k - 1)
                                     : 0.5);
    }
  }
  std::string out = flags.GetString("out", "classes.ppm");
  if (!img.WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("classification map (%d classes, %s): %dx%d in %.3fs -> %s\n",
              k, MethodName(options.method), width, height,
              timer.ElapsedSeconds(), out.c_str());
  return 0;
}

// Renders a Nadaraya–Watson regression field from a CSV with a non-negative
// target column (--target-col, default: last column).
int CmdRegress(const Flags& flags) {
  std::string in = flags.GetString("in", "");
  if (in.empty()) {
    std::fprintf(stderr, "kdvtool regress: --in FILE.csv required\n");
    return 1;
  }
  PointSet rows;
  Status load_status = LoadPointsCsv(in, {}, &rows);
  if (!load_status.ok()) {
    PrintStatus(load_status);
    return 1;
  }
  const int cols = rows[0].dim();
  int target_col = flags.GetInt("target-col", cols - 1);
  if (cols < 3 || target_col < 0 || target_col >= cols) {
    std::fprintf(stderr, "kdvtool regress: need x,y plus a target column\n");
    return 1;
  }

  PointSet xs;
  std::vector<double> ys;
  Rect domain(2);
  for (const Point& row : rows) {
    if (row[target_col] < 0.0) {
      std::fprintf(stderr, "kdvtool regress: targets must be >= 0\n");
      return 1;
    }
    Point p(2);
    int c = 0;
    for (int j = 0; j < cols && c < 2; ++j) {
      if (j == target_col) continue;
      p[c++] = row[j];
    }
    xs.push_back(p);
    ys.push_back(row[target_col]);
    domain.Expand(p);
  }

  KernelRegressor::Options options;
  if (!ParseMethod(flags.GetString("method", "quad"), &options.method)) {
    std::fprintf(stderr, "kdvtool: unknown --method\n");
    return 1;
  }
  if (!ParseKernel(flags.GetString("kernel", "gaussian"), &options.kernel)) {
    std::fprintf(stderr, "kdvtool: unknown --kernel\n");
    return 1;
  }
  KernelRegressor regressor(std::move(xs), std::move(ys), options);

  int width = flags.GetInt("width", 320);
  int height = flags.GetInt("height", width * 3 / 4);
  double eps = flags.GetDouble("eps", 0.01);
  PixelGrid grid(width, height, domain);
  DensityFrame field(width, height);
  Timer timer;
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      field.at(x, y) = regressor.Estimate(grid.PixelCenter(x, y),
                                          eps).estimate;
    }
  }
  std::string out = flags.GetString("out", "regression.ppm");
  if (!RenderHeatMap(field).WritePpm(out)) {
    std::fprintf(stderr, "kdvtool: cannot write %s\n", out.c_str());
    return 1;
  }
  std::printf("regression field (%s, eps=%g): %dx%d in %.3fs -> %s\n",
              MethodName(options.method), eps, width, height,
              timer.ElapsedSeconds(), out.c_str());
  return 0;
}

// Shared flag parsing for the state-directory commands (recover,
// checkpoint). Returns false after printing a usage error.
bool ParseRecoveryOptions(const Flags& flags, const char* cmd,
                          RecoveryOptions* options) {
  options->state_dir = flags.GetString("state", "");
  if (options->state_dir.empty()) {
    std::fprintf(stderr, "kdvtool %s: --state DIR required\n", cmd);
    return false;
  }
  options->csv_fallback = flags.GetString("csv", "");
  const int leaf_size = GetValidatedInt(flags, "leaf-size", 32);
  if (leaf_size < 1) {
    std::fprintf(stderr, "kdvtool %s: --leaf-size must be >= 1\n", cmd);
    return false;
  }
  options->leaf_size = static_cast<size_t>(leaf_size);
  return true;
}

// Recovers (or with --bootstrap, initializes) a crash-consistent state
// directory and prints the full recovery report. Quarantined files are
// listed on stderr so operators see them even when piping stdout.
int CmdRecover(const Flags& flags) {
  RecoveryOptions options;
  if (!ParseRecoveryOptions(flags, "recover", &options)) return 2;

  if (flags.GetBool("bootstrap", false)) {
    PointSet points;
    if (!LoadInput(flags, &points)) return 1;
    StatusOr<RecoveredState> state =
        RecoveryManager::Bootstrap(options, std::move(points));
    if (!state.ok()) {
      PrintStatus(state.status());
      return 1;
    }
    std::printf("bootstrapped %s: gen %llu, %zu points, journal floor %llu\n",
                options.state_dir.c_str(),
                static_cast<unsigned long long>(state->generation),
                state->live_points.size(),
                static_cast<unsigned long long>(state->journal->floor()));
    return 0;
  }

  RecoveryReport report;
  StatusOr<RecoveredState> state = RecoveryManager::Recover(options, &report);
  for (const std::string& path : report.quarantined) {
    std::fprintf(stderr, "kdvtool recover: quarantined %s\n", path.c_str());
  }
  if (!state.ok()) {
    PrintStatus(state.status());
    return 1;
  }
  std::printf("%s\n", report.Summary().c_str());
  std::printf("recovered %s: gen %llu, %zu live points, journal segments "
              "[%llu, %llu]\n",
              options.state_dir.c_str(),
              static_cast<unsigned long long>(state->generation),
              state->live_points.size(),
              static_cast<unsigned long long>(state->journal->floor()),
              static_cast<unsigned long long>(state->journal->tail_sequence()));
  return 0;
}

// Recovers the state directory, then folds the journal into a fresh index
// generation committed by an atomic manifest flip.
int CmdCheckpoint(const Flags& flags) {
  RecoveryOptions options;
  if (!ParseRecoveryOptions(flags, "checkpoint", &options)) return 2;

  RecoveryReport report;
  StatusOr<RecoveredState> state = RecoveryManager::Recover(options, &report);
  if (!state.ok()) {
    PrintStatus(state.status());
    return 1;
  }
  const uint64_t old_gen = state->generation;
  Status status = RecoveryManager::RunCheckpoint(&*state);
  if (!status.ok()) {
    PrintStatus(status);
    return 1;
  }
  std::printf("checkpoint %s: gen %llu -> %llu, %zu points folded, journal "
              "floor %llu\n",
              options.state_dir.c_str(),
              static_cast<unsigned long long>(old_gen),
              static_cast<unsigned long long>(state->generation),
              state->live_points.size(),
              static_cast<unsigned long long>(state->journal->floor()));
  return 0;
}

// Percentile over a sorted sample (nearest-rank); 0 for an empty sample.
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(p * static_cast<double>(sorted.size()));
  if (rank >= sorted.size()) rank = sorted.size() - 1;
  return sorted[rank];
}

// Closed-loop load generator against RenderService: --clients worker threads
// each submit a request, wait for its outcome, and repeat until --requests
// requests have been attempted. Prints throughput, latency percentiles, and
// shed/degraded/retried counts, then verifies the serving invariants (only
// kResourceExhausted rejections, only finite pixels) and exits non-zero if
// any were violated.
int CmdServeSim(const Flags& flags) {
  Session s;
  if (!OpenSession(flags, &s)) return 1;

  const int threads_flag = GetValidatedInt(flags, "threads", 4);
  if (threads_flag < 0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --threads must be an integer >= 0 "
                 "(0 = hardware concurrency)\n");
    return 2;
  }
  const int threads = ResolveRenderThreads(threads_flag);
  int frame_threads = GetValidatedInt(flags, "frame-threads", 1);
  if (frame_threads < 0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --frame-threads must be an integer >= 0 "
                 "(0 = hardware concurrency)\n");
    return 2;
  }
  int tile_rows = GetValidatedInt(flags, "tile-rows", 16);
  if (tile_rows < 1) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --tile-rows must be an integer >= 1\n");
    return 2;
  }
  bool tile_shared = false;
  if (!ParseTileShared(flags, "serve-sim", &tile_shared)) return 2;
  const int clients = flags.GetInt("clients", threads * 4);
  const long requests = flags.GetInt("requests", 100);
  if (clients < 1 || requests < 1) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --clients/--requests must be >= 1\n");
    return 2;
  }
  double budget_ms = GetValidatedDouble(flags, "budget-ms", -1.0);
  if (std::isnan(budget_ms)) {
    std::fprintf(stderr, "kdvtool serve-sim: bad --budget-ms\n");
    return 2;
  }
  double eps = GetValidatedDouble(flags, "eps", 0.05);
  Status eps_status = ValidateEps(eps);
  if (!eps_status.ok()) {
    PrintStatus(eps_status);
    return 1;
  }
  std::string on_deadline = flags.GetString("on-deadline", "degrade");
  if (on_deadline != "degrade" && on_deadline != "fail") {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --on-deadline must be 'degrade' or "
                 "'fail'\n");
    return 2;
  }

  const int swap_after = GetValidatedInt(flags, "swap-after", -1);
  if (flags.Has("swap-after") && swap_after < 0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: --swap-after must be an integer >= 0 "
                 "(completed requests before the hot-swap)\n");
    return 2;
  }

  // Base seed for the client swarm's shed-backoff jitter (client c derives
  // seed + c). Stamped into the JSON report alongside the build id so a
  // captured run names everything needed to reproduce it.
  uint64_t swarm_seed = 0xC11E47ull;
  if (!GetSeedFlag(flags, "seed", swarm_seed, &swarm_seed)) {
    std::fprintf(stderr, "kdvtool serve-sim: bad --seed\n");
    return 2;
  }

  // Runtime self-defense knobs (all opt-in).
  const bool use_governor = flags.GetBool("governor", false);
  const double mem_budget_mb = GetValidatedDouble(flags, "mem-budget-mb", 0.0);
  const double queue_wait_sat_ms =
      GetValidatedDouble(flags, "queue-wait-sat-ms", 500.0);
  if (std::isnan(mem_budget_mb) || mem_budget_mb < 0.0 ||
      std::isnan(queue_wait_sat_ms) || queue_wait_sat_ms <= 0.0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: bad --mem-budget-mb / "
                 "--queue-wait-sat-ms\n");
    return 2;
  }
  const bool use_watchdog = flags.GetBool("watchdog", false);
  const double watchdog_multiple =
      GetValidatedDouble(flags, "watchdog-multiple", 2.0);
  const double no_progress_ms =
      GetValidatedDouble(flags, "no-progress-ms", 1000.0);
  if (std::isnan(watchdog_multiple) || watchdog_multiple <= 0.0 ||
      std::isnan(no_progress_ms)) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: bad --watchdog-multiple / "
                 "--no-progress-ms\n");
    return 2;
  }
  const bool use_scrub = flags.GetBool("scrub", false);
  const double scrub_interval_ms =
      GetValidatedDouble(flags, "scrub-interval-ms", 5.0);
  const int scrub_samples = GetValidatedInt(flags, "scrub-samples", 2);
  const std::string scrub_index = flags.GetString("scrub-index", "");
  if (std::isnan(scrub_interval_ms) || scrub_interval_ms <= 0.0 ||
      scrub_samples < 0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: bad --scrub-interval-ms / "
                 "--scrub-samples\n");
    return 2;
  }

  std::string fp_spec = flags.GetString("failpoints", "");
  if (!fp_spec.empty()) {
    Status fp = failpoint::ConfigureFromSpec(fp_spec);
    if (!fp.ok()) {
      PrintStatus(fp);
      return 2;
    }
    if (!failpoint::enabled()) {
      std::fprintf(stderr,
                   "kdvtool serve-sim: warning: --failpoints armed but this "
                   "binary was built without -DKDV_FAILPOINTS=ON\n");
    }
  }

  KdeEvaluator evaluator = s.bench->MakeEvaluator(s.method);
  // The hot-swap target must exist before any serving thread starts:
  // Workbench::MakeEvaluator mutates its bound-function caches and is not
  // thread-safe. The evaluators themselves are safe to share.
  KdeEvaluator next_evaluator = s.bench->MakeEvaluator(s.method);
  PixelGrid grid(s.width, s.height, s.bench->data_bounds());

  RenderService::Options options;
  options.num_threads = threads;
  options.max_queue = static_cast<size_t>(flags.GetInt("queue", threads * 2));
  options.max_attempts = flags.GetInt("max-attempts", 3);
  options.intra_frame_threads = frame_threads;
  options.tile_rows = tile_rows;
  options.tile_shared = tile_shared;
  if (use_governor) {
    options.governor.enabled = true;
    options.governor.queue_wait_saturation_seconds = queue_wait_sat_ms / 1e3;
    options.governor.memory_budget_bytes =
        static_cast<uint64_t>(mem_budget_mb * 1024.0 * 1024.0);
  }
  if (use_watchdog) {
    options.watchdog.enabled = true;
    options.watchdog.deadline_multiple = watchdog_multiple;
    options.watchdog.no_progress_seconds = no_progress_ms / 1e3;
  }

  // Start cold so the readiness transition is observable, then publish the
  // first epoch the way a recovery-managed deployment would.
  RenderService service(options);
  const std::string health_at_start = ServiceHealthName(service.Health());
  service.SwapEvaluator(&evaluator);
  const std::string health_serving = ServiceHealthName(service.Health());

  // Online integrity scrubber: re-verifies the serving state while the load
  // runs. On a confirmed mismatch the corruption handler quarantines the
  // on-disk index (if one is being swept), hot-swaps the known-good spare
  // evaluator as a new epoch, and returns the service to kServing — all
  // without dropping in-flight requests (they finish on their own epoch).
  const size_t in_flight_cap = options.max_in_flight > 0
                                   ? options.max_in_flight
                                   : options.max_queue +
                                         static_cast<size_t>(threads);
  std::unique_ptr<IntegrityScrubber> scrubber;
  if (use_scrub) {
    IntegrityScrubber::Options sopts;
    sopts.enabled = true;
    sopts.interval_seconds = scrub_interval_ms / 1e3;
    sopts.pixel_samples_per_tick = scrub_samples;
    sopts.index_path = scrub_index;
    sopts.defer = [&service, in_flight_cap] {
      // Yield to the serving path while it is saturated; scrub in the gaps.
      return service.in_flight() >= in_flight_cap;
    };
    scrubber = std::make_unique<IntegrityScrubber>(
        sopts, [&service] { return service.CurrentEvaluator(); },
        [&service, &next_evaluator, &scrub_index](const std::string& reason) {
          std::fprintf(stderr, "kdvtool serve-sim: scrubber: %s\n",
                       reason.c_str());
          service.SetHealth(ServiceHealth::kRecovering);
          if (!scrub_index.empty() && !LoadKdTree(scrub_index).ok()) {
            const std::string jail = scrub_index + ".quarantine";
            if (std::rename(scrub_index.c_str(), jail.c_str()) == 0) {
              std::fprintf(stderr, "kdvtool serve-sim: quarantined %s\n",
                           jail.c_str());
            }
          }
          service.SwapEvaluator(&next_evaluator);
          service.SetHealth(ServiceHealth::kServing);
          return OkStatus();
        });
    scrubber->Start();
  }

  ServeRequestOptions request;
  request.eps = eps;
  request.budget_seconds = budget_ms >= 0.0 ? budget_ms / 1000.0 : -1.0;
  request.degrade = on_deadline == "degrade";

  std::atomic<long> next{0};
  std::atomic<uint64_t> bad_rejections{0};  // shed with a code other than
                                            // kResourceExhausted
  std::atomic<uint64_t> nonfinite_pixels{0};
  std::atomic<uint64_t> dropped{0};  // shed even after client-side retries
  std::mutex merge_mu;
  std::vector<double> latencies_ms;  // served requests, shed-retry included

  // A shed request is retried by its client with jittered backoff (what a
  // well-behaved production client does), so measured latency includes the
  // time spent being pushed back. A request shed kMaxClientTries times in a
  // row is dropped.
  constexpr int kMaxClientTries = 1000;

  Timer wall;
  std::vector<std::thread> swarm;
  swarm.reserve(static_cast<size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    swarm.emplace_back([&, c] {
      std::vector<double> local;
      Backoff shed_backoff({/*initial_ms=*/0.2, /*multiplier=*/2.0,
                            /*max_ms=*/5.0, /*jitter=*/0.5},
                           /*seed=*/swarm_seed + static_cast<uint64_t>(c));
      for (;;) {
        if (next.fetch_add(1) >= requests) break;
        Timer lat;
        bool served = false;
        shed_backoff.Reset();
        for (int tries = 0; tries < kMaxClientTries; ++tries) {
          StatusOr<std::future<ServeOutcome>> ticket =
              service.Submit(grid, request);
          if (ticket.ok()) {
            ServeOutcome outcome = ticket->get();
            local.push_back(lat.ElapsedMillis());
            for (double v : outcome.render.frame.values) {
              if (!std::isfinite(v)) nonfinite_pixels.fetch_add(1);
            }
            served = true;
            break;
          }
          if (ticket.status().code() != StatusCode::kResourceExhausted) {
            bad_rejections.fetch_add(1);
            break;
          }
          double ms = shed_backoff.NextDelayMs();
          std::this_thread::sleep_for(
              std::chrono::duration<double, std::milli>(ms));
        }
        if (!served) dropped.fetch_add(1);
      }
      std::lock_guard<std::mutex> lock(merge_mu);
      latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
    });
  }
  // Hot-swap monitor: publishes the next epoch once --swap-after requests
  // have completed (or at end of load if the run was shorter), while the
  // client swarm keeps submitting. In-flight renders finish on the epoch
  // they started with; the invariant checks below would catch any drop.
  std::atomic<bool> clients_done{false};
  std::thread swapper;
  if (swap_after >= 0) {
    swapper = std::thread([&] {
      while (!clients_done.load(std::memory_order_acquire)) {
        if (service.stats().completed >=
            static_cast<uint64_t>(swap_after)) {
          break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      service.SwapEvaluator(&next_evaluator);
    });
  }
  for (std::thread& t : swarm) t.join();
  clients_done.store(true, std::memory_order_release);
  if (swapper.joinable()) swapper.join();
  if (scrubber != nullptr) scrubber->Stop();
  service.Stop();
  const std::string health_final = ServiceHealthName(service.Health());
  const double wall_seconds = wall.ElapsedSeconds();
  if (!fp_spec.empty()) failpoint::Reset();

  ServiceStats stats = service.stats();
  OverloadGovernor::Stats gov = service.governor_stats();
  std::vector<OverloadGovernor::Transition> gov_transitions =
      service.governor_transitions();
  std::vector<StallReport> stalls = service.watchdog_stall_reports();
  IntegrityScrubber::Stats scrub{};
  if (scrubber != nullptr) scrub = scrubber->stats();
  std::sort(latencies_ms.begin(), latencies_ms.end());
  const double rps =
      wall_seconds > 0.0
          ? static_cast<double>(stats.completed) / wall_seconds
          : 0.0;
  const double p50 = Percentile(latencies_ms, 0.50);
  const double p95 = Percentile(latencies_ms, 0.95);
  const double p99 = Percentile(latencies_ms, 0.99);

  if (flags.GetBool("json", false)) {
    JsonWriter w;
    w.BeginObject()
        .Key("seed").Value(swarm_seed)
        .Key("build").Value(BuildStamp())
        .Key("threads").Value(threads)
        .Key("clients").Value(clients)
        .Key("requests").Value(static_cast<int64_t>(requests))
        .Key("budget_ms").Number(budget_ms, 6)
        .Key("wall_seconds").Number(wall_seconds, 6)
        .Key("throughput_rps").Number(rps, 6);
    w.Key("latency_ms").BeginObject()
        .Key("p50").Number(p50, 6)
        .Key("p95").Number(p95, 6)
        .Key("p99").Number(p99, 6)
        .EndObject();
    w.Key("counts").BeginObject()
        .Key("submitted").Value(stats.submitted)
        .Key("admitted").Value(stats.admitted)
        .Key("shed").Value(stats.shed)
        .Key("served_ok").Value(stats.served_ok)
        .Key("cancelled").Value(stats.cancelled)
        .Key("deadline_expired").Value(stats.deadline_expired)
        .Key("degraded").Value(stats.degraded)
        .Key("retries").Value(stats.retries)
        .Key("faults").Value(stats.faults)
        .Key("breaker_trips").Value(stats.breaker_trips)
        .Key("unavailable").Value(stats.unavailable)
        .Key("dropped").Value(static_cast<uint64_t>(dropped.load()))
        .EndObject();
    w.Key("tiers").BeginObject()
        .Key("certified").Value(stats.tier_certified)
        .Key("progressive").Value(stats.tier_progressive)
        .Key("coarse").Value(stats.tier_coarse)
        .Key("flat").Value(stats.tier_flat)
        .EndObject();
    // "current" is null until the first publication: epoch ids start at 1,
    // but consumers must not key liveness off the raw number.
    w.Key("epochs").BeginObject().Key("swaps").Value(stats.swaps);
    if (stats.epoch_published) {
      w.Key("current").Value(stats.epoch);
    } else {
      w.Key("current").Null();
    }
    w.EndObject();
    w.Key("tile_shared").BeginObject()
        .Key("enabled").Value(tile_shared)
        .Key("frontier_cache_hits").Value(stats.frontier_cache_hits)
        .EndObject();
    w.Key("simd").Value(SimdLevelName(ActiveSimdLevel()));
    w.Key("health").BeginObject()
        .Key("at_start").Value(health_at_start)
        .Key("serving").Value(health_serving)
        .Key("final").Value(health_final)
        .EndObject();
    w.Key("invariants").BeginObject()
        .Key("bad_rejections").Value(static_cast<uint64_t>(bad_rejections.load()))
        .Key("nonfinite_pixels").Value(static_cast<uint64_t>(nonfinite_pixels.load()))
        .EndObject();
    w.Key("governor").BeginObject()
        .Key("enabled").Value(use_governor)
        .Key("activations").Value(gov.activations)
        .Key("brownout_applied").Value(stats.brownout_applied)
        .Key("brownout_shed").Value(stats.brownout_shed)
        .Key("level").Value(OverloadGovernor::LevelName(gov.level))
        .Key("max_level").Value(OverloadGovernor::LevelName(gov.max_level))
        .Key("pressure").Number(gov.pressure, 6)
        .Key("transitions").BeginArray();
    for (const OverloadGovernor::Transition& t : gov_transitions) {
      w.BeginObject()
          .Key("at_s").Number(t.at_seconds, 6)
          .Key("from").Value(OverloadGovernor::LevelName(t.from))
          .Key("to").Value(OverloadGovernor::LevelName(t.to))
          .Key("pressure").Number(t.pressure, 6)
          .EndObject();
    }
    w.EndArray().EndObject();
    w.Key("watchdog").BeginObject()
        .Key("enabled").Value(use_watchdog)
        .Key("kills").Value(stats.watchdog_kills)
        .Key("stalls").BeginArray();
    for (const StallReport& stall : stalls) {
      w.BeginObject()
          .Key("request_id").Value(stall.request_id)
          .Key("elapsed_s").Number(stall.elapsed_seconds, 6)
          .Key("budget_s").Number(stall.budget_seconds, 6)
          .Key("no_progress").Value(stall.no_progress)
          .EndObject();
    }
    w.EndArray().EndObject();
    w.Key("scrubber").BeginObject()
        .Key("enabled").Value(use_scrub)
        .Key("ticks").Value(scrub.ticks)
        .Key("deferred").Value(scrub.deferred)
        .Key("crc_slices").Value(scrub.crc_slices)
        .Key("crc_passes").Value(scrub.crc_passes)
        .Key("pixel_checks").Value(scrub.pixel_checks)
        .Key("mismatches").Value(scrub.mismatches)
        .Key("recoveries").Value(scrub.recoveries)
        .Key("rebaselines").Value(scrub.rebaselines)
        .EndObject();
    w.EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    std::printf("serve-sim: %d workers, %d clients, %ld requests, %dx%d "
                "frames, budget %gms\n",
                threads, clients, requests, s.width, s.height, budget_ms);
    std::printf("  throughput: %.1f req/s (%llu completed in %.3fs)\n", rps,
                static_cast<unsigned long long>(stats.completed),
                wall_seconds);
    std::printf("  latency:    p50 %.2fms  p95 %.2fms  p99 %.2fms\n", p50,
                p95, p99);
    std::printf("  admitted %llu, shed %llu, served_ok %llu, degraded %llu, "
                "deadline_expired %llu\n",
                static_cast<unsigned long long>(stats.admitted),
                static_cast<unsigned long long>(stats.shed),
                static_cast<unsigned long long>(stats.served_ok),
                static_cast<unsigned long long>(stats.degraded),
                static_cast<unsigned long long>(stats.deadline_expired));
    std::printf("  retries %llu, faults %llu, breaker_trips %llu, "
                "unavailable %llu, dropped %llu\n",
                static_cast<unsigned long long>(stats.retries),
                static_cast<unsigned long long>(stats.faults),
                static_cast<unsigned long long>(stats.breaker_trips),
                static_cast<unsigned long long>(stats.unavailable),
                static_cast<unsigned long long>(dropped.load()));
    std::printf("  tiers: certified %llu, progressive %llu, coarse %llu, "
                "flat %llu\n",
                static_cast<unsigned long long>(stats.tier_certified),
                static_cast<unsigned long long>(stats.tier_progressive),
                static_cast<unsigned long long>(stats.tier_coarse),
                static_cast<unsigned long long>(stats.tier_flat));
    std::printf("  health: %s -> %s (final %s), epoch %llu after %llu "
                "swap(s)\n",
                health_at_start.c_str(), health_serving.c_str(),
                health_final.c_str(),
                static_cast<unsigned long long>(stats.epoch),
                static_cast<unsigned long long>(stats.swaps));
    if (tile_shared) {
      std::printf("  tile-shared: on, %llu frontier cache hit(s)\n",
                  static_cast<unsigned long long>(stats.frontier_cache_hits));
    }
    std::printf("  simd: %s\n", SimdLevelName(ActiveSimdLevel()));
    if (use_governor) {
      std::printf("  governor: level %s (max %s), pressure %.3f, "
                  "browned_out %llu, shed %llu, %zu transition(s)\n",
                  OverloadGovernor::LevelName(gov.level),
                  OverloadGovernor::LevelName(gov.max_level), gov.pressure,
                  static_cast<unsigned long long>(stats.brownout_applied),
                  static_cast<unsigned long long>(stats.brownout_shed),
                  gov_transitions.size());
    }
    if (use_watchdog) {
      std::printf("  watchdog: %llu kill(s), %zu stall report(s)\n",
                  static_cast<unsigned long long>(stats.watchdog_kills),
                  stalls.size());
    }
    if (use_scrub) {
      std::printf("  scrubber: %llu tick(s) (%llu deferred), %llu CRC "
                  "slice(s)/%llu pass(es), %llu pixel check(s), %llu "
                  "mismatch(es), %llu recover(ies)\n",
                  static_cast<unsigned long long>(scrub.ticks),
                  static_cast<unsigned long long>(scrub.deferred),
                  static_cast<unsigned long long>(scrub.crc_slices),
                  static_cast<unsigned long long>(scrub.crc_passes),
                  static_cast<unsigned long long>(scrub.pixel_checks),
                  static_cast<unsigned long long>(scrub.mismatches),
                  static_cast<unsigned long long>(scrub.recoveries));
    }
  }

  // Written before the alarm checks below: the metrics artifact should
  // exist even when the run exits nonzero (that is when it is most useful).
  const int metrics_rc = MaybeWriteMetricsOut(flags);

  if (bad_rejections.load() > 0) {
    std::fprintf(stderr,
                 "kdvtool serve-sim: %llu rejections carried a code other "
                 "than RESOURCE_EXHAUSTED\n",
                 static_cast<unsigned long long>(bad_rejections.load()));
    return 1;
  }
  if (nonfinite_pixels.load() > 0) {
    std::fprintf(stderr, "kdvtool serve-sim: %llu non-finite pixels served\n",
                 static_cast<unsigned long long>(nonfinite_pixels.load()));
    return 1;
  }
  if (scrub.mismatches > 0) {
    // The run is still reported in full above; the exit code is the alarm a
    // deployment script keys off (the scrubber found live-state corruption,
    // even if it then recovered).
    std::fprintf(stderr,
                 "kdvtool serve-sim: scrubber found %llu integrity "
                 "mismatch(es) (%llu recovered)\n",
                 static_cast<unsigned long long>(scrub.mismatches),
                 static_cast<unsigned long long>(scrub.recoveries));
    return 1;
  }
  return metrics_rc;
}

// ---- metrics: exercise the stack, dump the registry ------------------------

// Runs a small RenderService workload to populate the metric families, then
// prints the process-wide registry: Prometheus text exposition by default,
// the escaped-JSON snapshot with --json. --metrics-out FILE additionally
// writes the JSON form to FILE. This is the quickest way to inspect what
// the observability layer exports without standing up a full load run.
int CmdMetrics(const Flags& flags) {
  Session s;
  if (!OpenSession(flags, &s)) return 1;

  const long requests = flags.GetInt("requests", 8);
  if (requests < 0) {
    std::fprintf(stderr, "kdvtool metrics: --requests must be >= 0\n");
    return 2;
  }
  const double eps = GetValidatedDouble(flags, "eps", 0.05);
  const Status eps_status = ValidateEps(eps);
  if (!eps_status.ok()) {
    PrintStatus(eps_status);
    return 1;
  }

  KdeEvaluator evaluator = s.bench->MakeEvaluator(s.method);
  PixelGrid grid(s.width, s.height, s.bench->data_bounds());

  RenderService::Options options;
  options.num_threads = 2;
  options.max_queue = 8;
  {
    RenderService service(options);
    service.SwapEvaluator(&evaluator);
    ServeRequestOptions request;
    request.eps = eps;
    for (long i = 0; i < requests; ++i) {
      StatusOr<std::future<ServeOutcome>> ticket =
          service.Submit(grid, request);
      if (!ticket.ok()) {
        PrintStatus(ticket.status());
        return 1;
      }
      const ServeOutcome outcome = ticket->get();
      if (!outcome.status.ok()) {
        PrintStatus(outcome.status);
        return 1;
      }
    }
    // Scope exit stops the service before the snapshot, so no worker is
    // mid-increment while we read.
  }

  const obs::MetricsSnapshot snapshot = obs::MetricsRegistry::Global().Snapshot();
  if (flags.GetBool("json", false)) {
    std::printf("%s\n", obs::ExportJson(snapshot).c_str());
  } else {
    std::fputs(obs::ExportPrometheus(snapshot).c_str(), stdout);
  }
  return MaybeWriteMetricsOut(flags);
}

// ---- sim: deterministic whole-stack simulation -----------------------------

// Formats a CRC32 the way the human-readable output does ("%08x").
std::string HexCrc(uint32_t crc) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%08x", crc);
  return buf;
}

// Machine-readable one-object report for a single simulated run. The
// failure string is arbitrary text (invariant messages quote paths and
// expressions), so it goes through the escaping writer rather than the old
// replace-quotes-with-apostrophes hack that mangled the message.
void PrintSimJson(const SimReport& report) {
  JsonWriter w;
  w.BeginObject()
      .Key("seed").Value(report.seed)
      .Key("failed").Value(report.failed)
      .Key("failure").Value(report.failure)
      .Key("event_hash").Value(HexCrc(report.event_hash))
      .Key("events").Value(static_cast<uint64_t>(report.events.size()))
      .Key("metrics_crc").Value(HexCrc(report.metrics_crc))
      .Key("schedule").Value(report.schedule.Spec());
  w.Key("counts").BeginObject()
      .Key("ops").Value(report.ops)
      .Key("submits").Value(report.submits)
      .Key("admitted").Value(report.admitted)
      .Key("completions").Value(report.completions)
      .Key("certified").Value(report.certified)
      .Key("degraded").Value(report.degraded)
      .Key("journal_appends").Value(report.journal_appends)
      .Key("checkpoints").Value(report.checkpoints)
      .Key("swaps").Value(report.swaps)
      .Key("crashes").Value(report.crashes)
      .Key("faults_armed").Value(report.faults_armed)
      .EndObject();
  w.Key("virtual_seconds").Number(report.virtual_seconds, 6)
      .Key("build").Value(BuildStamp())
      .EndObject();
  std::printf("%s\n", w.Take().c_str());
}

// Shrinks the failing run's fault schedule and prints a shell-ready repro
// line. Always exits 1: the caller invokes this only for a failed report.
int ReportSimFailure(SimOptions options, const SimReport& failing) {
  options.seed = failing.seed;
  std::fprintf(stderr, "kdvtool sim: seed %llu FAILED: %s\n",
               static_cast<unsigned long long>(failing.seed),
               failing.failure.c_str());
  std::fprintf(stderr,
               "kdvtool sim: shrinking fault schedule (%zu event(s))...\n",
               failing.schedule.events.size());
  SimReport minimal = MinimizeFailure(options, failing);
  std::fprintf(stderr, "kdvtool sim: minimal schedule has %zu event(s): %s\n",
               minimal.schedule.events.size(),
               minimal.failure.empty() ? failing.failure.c_str()
                                       : minimal.failure.c_str());
  std::fprintf(stderr, "repro: %s\n", minimal.ReproLine().c_str());
  return 1;
}

int CmdSim(const Flags& flags) {
  SimOptions options;
  if (!GetSeedFlag(flags, "seed", options.seed, &options.seed)) {
    std::fprintf(stderr, "kdvtool sim: bad --seed\n");
    return 2;
  }
  const bool replay = flags.Has("replay");
  if (replay && !GetSeedFlag(flags, "replay", options.seed, &options.seed)) {
    std::fprintf(stderr, "kdvtool sim: bad --replay\n");
    return 2;
  }
  options.num_ops = GetValidatedInt(flags, "ops", options.num_ops);
  options.num_workers = GetValidatedInt(flags, "workers", options.num_workers);
  const int queue =
      GetValidatedInt(flags, "queue", static_cast<int>(options.max_queue));
  options.dataset_n = GetValidatedInt(flags, "n", options.dataset_n);
  if (options.num_ops < 1 || options.num_workers < 1 || queue < 1 ||
      options.dataset_n < 8) {
    std::fprintf(stderr,
                 "kdvtool sim: --ops/--workers/--queue must be integers >= 1 "
                 "and --n an integer >= 8\n");
    return 2;
  }
  options.max_queue = static_cast<size_t>(queue);
  options.state_root = flags.GetString("state-root", "");
  options.faults_enabled = flags.GetBool("faults", true);
  options.plant_bug = flags.GetBool("plant-bug", false);

  // --schedule replaces the seed-derived fault schedule (how a minimized
  // repro line re-enters the simulator).
  FaultSchedule explicit_schedule;
  if (flags.Has("schedule")) {
    StatusOr<FaultSchedule> parsed =
        FaultSchedule::Parse(flags.GetString("schedule", ""));
    if (!parsed.ok()) {
      PrintStatus(parsed.status());
      return 2;
    }
    explicit_schedule = std::move(parsed).value();
    options.schedule_override = &explicit_schedule;
  }

  const bool json = flags.GetBool("json", false);
  const int sweep = GetValidatedInt(flags, "seeds", 1);
  const bool until_failure = flags.GetBool("until-failure", false);
  if (sweep < 1) {
    std::fprintf(stderr, "kdvtool sim: --seeds must be an integer >= 1\n");
    return 2;
  }

  if (replay) {
    // The replay contract: two runs of the same (seed, config) must produce
    // byte-identical event logs. Divergence means nondeterminism leaked in
    // somewhere, which is itself a bug — report it before any invariant
    // verdict, because a diverging sim cannot be debugged from its seed.
    SimReport first = RunSimulation(options);
    SimReport second = RunSimulation(options);
    // Two fingerprints must match: the event log and the metrics snapshot.
    // The metrics snapshot catches a different class of leak (a wall-clock
    // read that slipped past the clock seam shows up as a differing
    // duration histogram even when the event order is stable).
    const bool identical = first.event_hash == second.event_hash &&
                           first.events == second.events &&
                           first.metrics_crc == second.metrics_crc &&
                           first.metrics_text == second.metrics_text;
    if (json) {
      PrintSimJson(first);
    } else {
      std::printf("sim replay: seed %llu, hash %08x vs %08x, "
                  "metrics %08x vs %08x -> %s\n",
                  static_cast<unsigned long long>(first.seed),
                  first.event_hash, second.event_hash, first.metrics_crc,
                  second.metrics_crc, identical ? "IDENTICAL" : "DIVERGED");
      std::printf("  %s\n", first.Summary().c_str());
    }
    if (!identical) {
      if (first.event_hash == second.event_hash &&
          first.events == second.events) {
        // Same event log, different metrics: nondeterminism confined to the
        // observability layer (an unseamed clock read or a real-time-ordered
        // histogram). Still a replay failure.
        std::fprintf(stderr,
                     "kdvtool sim: replay metrics diverged (%08x vs %08x) "
                     "with identical event logs\n",
                     first.metrics_crc, second.metrics_crc);
        // Name the first differing exposition line — "which metric" is the
        // whole debugging battle for this class of leak.
        std::istringstream a(first.metrics_text), b(second.metrics_text);
        std::string la, lb;
        while (std::getline(a, la) && std::getline(b, lb)) {
          if (la != lb) {
            std::fprintf(stderr, "  run 1: %s\n  run 2: %s\n", la.c_str(),
                         lb.c_str());
            break;
          }
        }
        return 1;
      }
      const size_t n = std::min(first.events.size(), second.events.size());
      size_t diverge = n;
      for (size_t i = 0; i < n; ++i) {
        if (first.events[i] != second.events[i]) {
          diverge = i;
          break;
        }
      }
      std::fprintf(stderr,
                   "kdvtool sim: replay diverged at event %zu of %zu/%zu\n",
                   diverge, first.events.size(), second.events.size());
      if (diverge < first.events.size()) {
        std::fprintf(stderr, "  run 1: %s\n", first.events[diverge].c_str());
      }
      if (diverge < second.events.size()) {
        std::fprintf(stderr, "  run 2: %s\n", second.events[diverge].c_str());
      }
      return 1;
    }
    if (first.failed) return ReportSimFailure(options, first);
    return 0;
  }

  // Seed sweep. --seeds N walks seed..seed+N-1; --until-failure keeps
  // walking until an invariant breaks (Ctrl-C is the other exit).
  const uint64_t base = options.seed;
  const uint64_t count = until_failure ? 0 : static_cast<uint64_t>(sweep);
  uint64_t passed = 0;
  for (uint64_t i = 0; count == 0 || i < count; ++i) {
    options.seed = base + i;
    SimReport report = RunSimulation(options);
    if (report.failed) {
      if (json) {
        PrintSimJson(report);
      } else {
        std::printf("%s\n", report.Summary().c_str());
      }
      return ReportSimFailure(options, report);
    }
    ++passed;
    if (count == 1) {
      if (json) {
        PrintSimJson(report);
      } else {
        std::printf("%s\n", report.Summary().c_str());
      }
      return 0;
    }
    if (!json && passed % 25 == 0) {
      std::printf("sim sweep: %llu seed(s) passed (last %llu)\n",
                  static_cast<unsigned long long>(passed),
                  static_cast<unsigned long long>(options.seed));
    }
  }
  if (json) {
    JsonWriter w;
    w.BeginObject()
        .Key("seeds").Value(passed)
        .Key("base_seed").Value(base)
        .Key("failed").Value(false)
        .Key("build").Value(BuildStamp())
        .EndObject();
    std::printf("%s\n", w.Take().c_str());
  } else {
    std::printf("sim sweep: all %llu seed(s) passed (%llu..%llu)\n",
                static_cast<unsigned long long>(passed),
                static_cast<unsigned long long>(base),
                static_cast<unsigned long long>(base + passed - 1));
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string cmd = argv[1];
  // Handled before flag parsing so `kdvtool --version` works even though
  // every other invocation expects a bare subcommand first.
  if (cmd == "version" || cmd == "--version") {
    std::printf("%s\n", kdv::BuildStamp().c_str());
    return 0;
  }

  kdv::Flags flags;
  std::string error;
  if (!kdv::Flags::Parse(argc - 1, argv + 1, &flags, &error)) {
    std::fprintf(stderr, "kdvtool: %s\n", error.c_str());
    return 2;
  }

  // Fault-injection sites from KDV_FAILPOINTS (no-op unless the binary was
  // built with -DKDV_FAILPOINTS=ON; a malformed spec warns on stderr).
  kdv::failpoint::ConfigureFromEnv();

  if (cmd == "generate") return CmdGenerate(flags);
  if (cmd == "info") return CmdInfo(flags);
  if (cmd == "index") return CmdIndex(flags);
  if (cmd == "render") return CmdRender(flags);
  if (cmd == "hotspot") return CmdHotspot(flags);
  if (cmd == "progressive") return CmdProgressive(flags);
  if (cmd == "classify") return CmdClassify(flags);
  if (cmd == "regress") return CmdRegress(flags);
  if (cmd == "serve-sim") return CmdServeSim(flags);
  if (cmd == "metrics") return CmdMetrics(flags);
  if (cmd == "sim") return CmdSim(flags);
  if (cmd == "recover") return CmdRecover(flags);
  if (cmd == "checkpoint") return CmdCheckpoint(flags);
  return Usage();
}
